"""Planted bugs for fuzzer self-testing.

A fuzzer you have never seen fail is untested test infrastructure.  Each
:class:`Mutation` here plants one *known* bug into a scenario run — modelled
on real defect classes this repo has actually had — and ``repro fuzz
--self-test`` asserts the pipeline catches it end-to-end: the oracle flags
it, the shrinker minimises it, and the emitted artifact replays to the same
failure bit-identically.

Mutations are addressed by name from :attr:`ScenarioSpec.mutation`, so a
repro artifact for a planted bug replays the *same* planted bug in a fresh
process.  They are deterministic by construction (no randomness of their
own) and must perturb exactly one engine or accounting path so the expected
failure kind is known.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from ..core.message import GossipMessage, Outgoing


class _DoubleFireListeners(list):
    """A listener list whose iteration yields every listener twice.

    Swapped in for a node's ``_listeners``, it makes each LPB-DELIVER
    notify the application (and therefore the invariant monitor) twice —
    the observable behaviour of broken duplicate suppression at the
    delivery boundary, without touching counters or randomness.
    """

    def __iter__(self):
        for listener in list.__iter__(self):
            yield listener
            yield listener


def _double_delivery_post_build(sim, spec, engine) -> None:
    """Break duplicate suppression on one node of the *serial* engine.

    The victim is the lowest pid, so the bug's location is a pure function
    of the spec.  Only the serial engine is mutated: the planted defect is
    an engine-local regression, the class of bug the invariant oracle (not
    the differential one) must catch.
    """
    if engine != "serial":
        return
    victim = sim.nodes[min(sim.nodes)]
    victim._listeners = _DoubleFireListeners(victim._listeners)


def _equivocation_post_build(sim, spec, engine) -> None:
    """Make one node of the *serial* engine equivocate on every gossip.

    The victim (lowest pid, a pure function of the spec) rewrites the
    payload of every notification it forwards, choosing the lie by
    destination parity — different receivers observe conflicting payloads
    for the same event id.  This is the defect class the agreement
    invariant exists to catch: the oracle must report
    ``invariant:agreement`` (plain lpbcast trusts the first payload it
    hears).  Serial-only, like every engine-local planted bug: wrapping a
    bound method would not survive pickling into shard workers, and one
    perturbed engine is enough for the invariant oracle.
    """
    if engine != "serial":
        return
    victim = sim.nodes[min(sim.nodes)]
    original_tick = victim.on_tick

    def lying_tick(now):
        rewritten = []
        for outgoing in original_tick(now):
            message = outgoing.message
            if isinstance(message, GossipMessage) and message.events:
                variant = outgoing.destination % 2
                events = tuple(
                    n._replace(payload=f"equiv:{variant}")
                    if n.payload is not None else n
                    for n in message.events
                )
                rewritten.append(
                    Outgoing(outgoing.destination,
                             replace(message, events=events))
                )
            else:
                rewritten.append(outgoing)
        return rewritten

    victim.on_tick = lying_tick


def _sharded_undercount_post_run(sim, spec, engine) -> None:
    """Re-introduce a sharded accounting undercount (the PR 3 bug class).

    After a sharded run, one first-round gossip send vanishes from the
    merged counters — exactly what happened when pickling dropped
    monkey-patched instruments.  The differential oracle must flag the
    serial/sharded record mismatch.
    """
    if engine != "sharded":
        return
    sim.telemetry.inc("sim.sends", -1, round=1, kind="GossipMessage")


def _dropped_dependency_post_build(sim, spec, engine) -> None:
    """Break causal readiness on every node of the *serial* engine.

    Each hold-back gate is shadowed to consider everything ready: it
    releases notifications the moment they arrive, dependencies delivered
    or not — the classic dropped-dependency ordering bug a causal broadcast
    implementation can ship.  The defect lives in the gate *class*, so it
    is planted system-wide (any one node receiving out of causal order
    suffices), and the ``causality`` invariant must flag the first delivery
    whose dependency frontier is not yet covered.  Serial-only: an
    instance-attribute method shadow would not survive pickling into shard
    workers, and one perturbed engine is enough for the invariant oracle.
    """
    if engine != "serial":
        return
    for node in sim.nodes.values():
        gate = getattr(node, "causal", None)
        if gate is not None:
            gate._ready = lambda notification: True


def _columnar_undercount_post_run(sim, spec, engine) -> None:
    """Lose one honoured gossip send from the *columnar* engine's counters.

    ``sim.sends{kind="GossipMessage"}`` is part of the columnar honoured
    contract, so the honoured-subset differential must flag the mismatch —
    this is the planted proof that the columnar oracle actually compares
    something (an oracle honouring an empty subset would pass everything).
    """
    if engine != "columnar":
        return
    sim.telemetry.inc("sim.sends", -1, round=1, kind="GossipMessage")


@dataclass(frozen=True)
class Mutation:
    """One registered planted bug.

    ``post_build`` runs after the system is wired but before the first
    round; ``post_run`` runs after the last round but before the oracle
    reads the telemetry.  Either may be ``None``.
    """

    name: str
    description: str
    #: The failure kind the oracle is expected to report: "invariant" or
    #: "parity" — the self-test asserts the *right* detector fired.
    expected_kind: str
    post_build: Optional[Callable] = None
    post_run: Optional[Callable] = None
    #: Oracle engines the self-test campaign runs for this planted bug —
    #: a columnar-path defect needs the columnar differential switched on.
    engines: tuple = ("serial", "sharded")
    #: Scenario family the self-test generates for this bug: "plain",
    #: "byzantine" or "causal" — an ordering bug needs causal-delivery
    #: scenarios to have anything to violate.
    family: str = "plain"

    def apply_post_build(self, sim, spec, engine: str) -> None:
        if self.post_build is not None:
            self.post_build(sim, spec, engine)

    def apply_post_run(self, sim, spec, engine: str) -> None:
        if self.post_run is not None:
            self.post_run(sim, spec, engine)


MUTATIONS: Dict[str, Mutation] = {
    mutation.name: mutation
    for mutation in (
        Mutation(
            name="double-delivery",
            description="serial engine delivers every notification twice "
                        "(broken duplicate suppression at the delivery "
                        "boundary)",
            expected_kind="invariant",
            post_build=_double_delivery_post_build,
        ),
        Mutation(
            name="equivocation",
            description="one serial-engine node rewrites forwarded payloads "
                        "by destination parity (an equivocating sender; "
                        "plain lpbcast delivers conflicting payloads)",
            expected_kind="invariant",
            post_build=_equivocation_post_build,
        ),
        Mutation(
            name="sharded-undercount",
            description="sharded engine loses one first-round gossip from "
                        "the merged counter records (the classic pickling "
                        "undercount)",
            expected_kind="parity",
            post_run=_sharded_undercount_post_run,
        ),
        Mutation(
            name="columnar-undercount",
            description="columnar engine loses one first-round gossip from "
                        "its honoured counter records (a vectorized-pass "
                        "accounting slip)",
            expected_kind="parity",
            post_run=_columnar_undercount_post_run,
            engines=("serial", "columnar"),
        ),
        Mutation(
            name="dropped-dependency",
            description="every serial-engine causal gate treats every "
                        "notification as ready, delivering before its "
                        "dependencies (the dropped-dependency ordering bug)",
            expected_kind="invariant",
            post_build=_dropped_dependency_post_build,
            family="causal",
        ),
        Mutation(
            name="double-defect",
            description="broken duplicate suppression on the serial engine "
                        "AND a sharded counter undercount in one scenario "
                        "(two independent defects; the full oracle report "
                        "must list both signatures)",
            expected_kind="invariant",
            post_build=_double_delivery_post_build,
            post_run=_sharded_undercount_post_run,
        ),
    )
}


def get_mutation(name: Optional[str]) -> Optional[Mutation]:
    """Resolve a spec's mutation name (``None`` passes through)."""
    if name is None:
        return None
    try:
        return MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; registered: {sorted(MUTATIONS)}"
        ) from None
