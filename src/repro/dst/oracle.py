"""The DST oracle: invariants plus a serial/sharded differential check.

lpbcast's guarantees are probabilistic — low reliability under a harsh
fault plan is *data*, not a bug — so the oracle only judges properties that
must hold under **every** schedule:

1. **Invariants** (:class:`~repro.faults.invariants.InvariantMonitor`):
   duplicate-delivery inside the ``|eventIds|m`` window, buffer bounds,
   view-excludes-owner, unsubscription TTL expiry, crashed-process silence.
2. **Differential engine identity**: the serial and sharded engines must
   produce byte-identical canonical counter records for the same spec —
   the PR 4 bit-identity contract extended from one golden seed to every
   generated scenario.

Every failure carries a stable ``signature`` — the shrinker uses it to
verify a smaller scenario still reproduces the *same* bug rather than a
different one it stumbled into while shrinking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..telemetry import diff_counter_records
from .harness import RunOutcome, apply_scenario
from .spec import ScenarioSpec


@dataclass(frozen=True)
class FuzzFailure:
    """One oracle finding."""

    kind: str  # "invariant" or "parity"
    signature: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.signature}: {self.detail}"


@dataclass
class OracleReport:
    """The verdict on one spec across the engines it ran on."""

    spec: ScenarioSpec
    failures: List[FuzzFailure] = field(default_factory=list)
    #: Engine name -> canonical counter fingerprint of its run.
    fingerprints: Dict[str, str] = field(default_factory=dict)
    engines_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def signatures(self) -> List[str]:
        return [failure.signature for failure in self.failures]

    def summary(self) -> str:
        verdict = ("OK" if self.ok
                   else "; ".join(str(f) for f in self.failures[:3]))
        return f"{self.spec.describe()} -> {verdict}"


def _invariant_failures(outcome: RunOutcome) -> List[FuzzFailure]:
    """Collapse a run's violations into one failure per invariant name —
    a broken invariant usually fires every round, and the shrinker only
    needs the stable identity plus one concrete example."""
    failures: List[FuzzFailure] = []
    seen: Dict[str, int] = {}
    first: Dict[str, str] = {}
    for violation in outcome.violations:
        seen[violation.invariant] = seen.get(violation.invariant, 0) + 1
        first.setdefault(violation.invariant, str(violation))
    for invariant, count in sorted(seen.items()):
        failures.append(FuzzFailure(
            kind="invariant",
            signature=f"invariant:{invariant}",
            detail=(f"{count} violation(s) on the {outcome.engine} engine; "
                    f"first: {first[invariant]}"),
        ))
    return failures


def _parity_failure(serial: RunOutcome, sharded: RunOutcome
                    ) -> Optional[FuzzFailure]:
    if serial.fingerprint == sharded.fingerprint:
        return None
    diff = diff_counter_records(serial.records, sharded.records, limit=5)
    # The signature pins the first differing metric name: stable under
    # shrinking (the same bug keeps corrupting the same series) without
    # over-pinning exact counts, which legitimately change as the scenario
    # shrinks.
    first_metric = diff[0].split("{")[0].split(":")[0] if diff else "unknown"
    return FuzzFailure(
        kind="parity",
        signature=f"parity:{first_metric}",
        detail=("serial and sharded counter records diverge: "
                + "; ".join(diff)),
    )


def check_scenario(
    spec: ScenarioSpec,
    *,
    require_signature: Optional[str] = None,
) -> OracleReport:
    """Run the oracle on one spec.

    ``require_signature`` is the shrinker's fast path: when the caller only
    needs to know whether one specific *invariant* failure reproduces, the
    serial run alone can answer and the (much more expensive) sharded run
    is skipped.  Parity signatures always need both engines.
    """
    report = OracleReport(spec=spec)
    serial = apply_scenario(spec, "serial")
    report.engines_run.append("serial")
    report.fingerprints["serial"] = serial.fingerprint
    report.failures.extend(_invariant_failures(serial))
    if (require_signature is not None
            and require_signature.startswith("invariant:")
            and require_signature in report.signatures()):
        return report

    sharded = apply_scenario(spec, "sharded")
    report.engines_run.append("sharded")
    report.fingerprints["sharded"] = sharded.fingerprint
    # Sharded delivery-path violations are deduped against the serial ones:
    # the same protocol bug observed twice is one finding.
    serial_signatures = set(report.signatures())
    for failure in _invariant_failures(sharded):
        if failure.signature not in serial_signatures:
            report.failures.append(failure)
    parity = _parity_failure(serial, sharded)
    if parity is not None:
        report.failures.append(parity)
    return report
