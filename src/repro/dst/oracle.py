"""The DST oracle: invariants plus a serial/sharded differential check.

lpbcast's guarantees are probabilistic — low reliability under a harsh
fault plan is *data*, not a bug — so the oracle only judges properties that
must hold under **every** schedule:

1. **Invariants** (:class:`~repro.faults.invariants.InvariantMonitor`):
   duplicate-delivery inside the ``|eventIds|m`` window, buffer bounds,
   view-excludes-owner, unsubscription TTL expiry, crashed-process silence.
2. **Differential engine identity**: the serial and sharded engines must
   produce byte-identical canonical counter records for the same spec —
   the PR 4 bit-identity contract extended from one golden seed to every
   generated scenario.
3. **Columnar honoured parity** (opt-in via ``engines``): the columnar
   engine must match the serial engine byte-identically on the honoured
   counter subset (schedule-deterministic series — see
   :mod:`repro.sim.columnar_runner` for the contract and the declared
   divergences everything else falls under).

Every failure carries a stable ``signature`` — the shrinker uses it to
verify a smaller scenario still reproduces the *same* bug rather than a
different one it stumbled into while shrinking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..sim.columnar_runner import honoured_records
from ..telemetry import diff_counter_records
from .harness import RunOutcome, apply_scenario
from .spec import ScenarioSpec


@dataclass(frozen=True)
class FuzzFailure:
    """One oracle finding."""

    kind: str  # "invariant" or "parity"
    signature: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.signature}: {self.detail}"


@dataclass
class OracleReport:
    """The verdict on one spec across the engines it ran on."""

    spec: ScenarioSpec
    failures: List[FuzzFailure] = field(default_factory=list)
    #: Engine name -> canonical counter fingerprint of its run.
    fingerprints: Dict[str, str] = field(default_factory=dict)
    engines_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def signatures(self) -> List[str]:
        return [failure.signature for failure in self.failures]

    def summary(self) -> str:
        verdict = ("OK" if self.ok
                   else "; ".join(str(f) for f in self.failures[:3]))
        return f"{self.spec.describe()} -> {verdict}"


def _invariant_failures(outcome: RunOutcome) -> List[FuzzFailure]:
    """Collapse a run's violations into one failure per invariant name —
    a broken invariant usually fires every round, and the shrinker only
    needs the stable identity plus one concrete example."""
    failures: List[FuzzFailure] = []
    seen: Dict[str, int] = {}
    first: Dict[str, str] = {}
    for violation in outcome.violations:
        seen[violation.invariant] = seen.get(violation.invariant, 0) + 1
        first.setdefault(violation.invariant, str(violation))
    for invariant, count in sorted(seen.items()):
        failures.append(FuzzFailure(
            kind="invariant",
            signature=f"invariant:{invariant}",
            detail=(f"{count} violation(s) on the {outcome.engine} engine; "
                    f"first: {first[invariant]}"),
        ))
    return failures


def _parity_failure(serial: RunOutcome, sharded: RunOutcome
                    ) -> Optional[FuzzFailure]:
    if serial.fingerprint == sharded.fingerprint:
        return None
    diff = diff_counter_records(serial.records, sharded.records, limit=5)
    # The signature pins the first differing metric name: stable under
    # shrinking (the same bug keeps corrupting the same series) without
    # over-pinning exact counts, which legitimately change as the scenario
    # shrinks.
    first_metric = diff[0].split("{")[0].split(":")[0] if diff else "unknown"
    return FuzzFailure(
        kind="parity",
        signature=f"parity:{first_metric}",
        detail=("serial and sharded counter records diverge: "
                + "; ".join(diff)),
    )


def _columnar_parity_failure(serial: RunOutcome, columnar: RunOutcome
                             ) -> Optional[FuzzFailure]:
    """Compare only the honoured subset — the rest is declared divergence."""
    left = honoured_records(serial.records)
    right = honoured_records(columnar.records)
    if left == right:
        return None
    diff = diff_counter_records(left, right, limit=5)
    first_metric = diff[0].split("{")[0].split(":")[0] if diff else "unknown"
    return FuzzFailure(
        kind="parity",
        signature=f"parity:columnar:{first_metric}",
        detail=("serial and columnar honoured counter records diverge: "
                + "; ".join(diff)),
    )


def check_scenario(
    spec: ScenarioSpec,
    *,
    require_signature: Optional[str] = None,
    full: bool = False,
    engines: Sequence[str] = ("serial", "sharded"),
    workers: int = 1,
) -> OracleReport:
    """Run the oracle on one spec.

    ``require_signature`` is the shrinker's fast path: when the caller only
    needs to know whether one specific failure reproduces, the cheapest
    engine subset that can answer is run — the serial run alone for an
    *invariant* signature, serial + columnar for a ``parity:columnar:*``
    signature — and the remaining engines are skipped.  ``full=True``
    disables every fast path so the report lists *all* failures a spec
    produces (a scenario can break an invariant **and** engine parity at
    once; replay and artifacts use the full report).

    ``engines`` selects the differential pairs: it must contain
    ``"serial"``; add ``"sharded"`` for full-record parity and/or
    ``"columnar"`` for honoured-subset parity.  A ``parity:columnar:*``
    ``require_signature`` pulls the columnar engine in implicitly, so the
    shrinker needs no engine plumbing.

    ``workers`` is the columnar engine's worker-process count — always an
    explicit caller choice (never inferred from the host's core count, so
    a report is reproducible on any machine).  ``workers=N`` runs the
    columnar side of the differential over N shared-memory processes; the
    honoured fingerprint is worker-count-independent, so the expected
    verdict is the same for every N.  Setting ``workers != 1`` without a
    columnar run to apply it to is rejected, matching the
    ``create_simulation`` kwargs contract.
    """
    engines = tuple(engines)
    if "serial" not in engines:
        raise ValueError("the oracle always needs the serial reference run")
    unknown = set(engines) - {"serial", "sharded", "columnar"}
    if unknown:
        raise ValueError(f"unknown oracle engine(s): {sorted(unknown)}; "
                         f"workers= tunes the columnar engine and shards= "
                         f"the sharded engine, neither is an engine name")
    wants_columnar_sig = (require_signature is not None
                          and require_signature.startswith("parity:columnar"))
    if workers != 1 and not ("columnar" in engines or wants_columnar_sig):
        raise ValueError(
            f"workers={workers} applies to the 'columnar' engine only, "
            f"which is not part of this oracle run (engines={engines}); "
            f"add 'columnar' to engines= or drop workers=")
    report = OracleReport(spec=spec)
    serial = apply_scenario(spec, "serial")
    report.engines_run.append("serial")
    report.fingerprints["serial"] = serial.fingerprint
    report.failures.extend(_invariant_failures(serial))
    if (not full and require_signature is not None
            and require_signature.startswith("invariant:")
            and require_signature in report.signatures()):
        return report

    if "columnar" in engines or wants_columnar_sig:
        columnar = apply_scenario(spec, "columnar", workers=workers)
        report.engines_run.append("columnar")
        report.fingerprints["columnar"] = columnar.fingerprint
        parity = _columnar_parity_failure(serial, columnar)
        if parity is not None:
            report.failures.append(parity)
        if not full and wants_columnar_sig:
            # The caller only asked about this columnar signature; the
            # sharded run cannot produce it, so skip it either way.
            return report

    if "sharded" in engines:
        sharded = apply_scenario(spec, "sharded")
        report.engines_run.append("sharded")
        report.fingerprints["sharded"] = sharded.fingerprint
        # Sharded delivery-path violations are deduped against the serial
        # ones: the same protocol bug observed twice is one finding.
        serial_signatures = set(report.signatures())
        for failure in _invariant_failures(sharded):
            if failure.signature not in serial_signatures:
                report.failures.append(failure)
        parity = _parity_failure(serial, sharded)
        if parity is not None:
            report.failures.append(parity)
    return report
