"""Reproduction experiments: every figure of the paper as a function.

The benchmark harness (``benchmarks/``) and the command-line interface
(``python -m repro``) both drive these.
"""

from .figures import (
    EPSILON,
    TAU,
    fig2_series,
    fig3a_series,
    fig3b_series,
    fig4_series,
    fig5a_series,
    fig5b_series,
    fig6a_series,
    fig6b_series,
    fig7a_series,
    fig7b_series,
    lpbcast_infection_curve,
    lpbcast_mean_curve,
    measurement_reliability,
    pbcast_infection_curve,
    pbcast_mean_curve,
    pbcast_measurement_reliability,
)

__all__ = [
    "EPSILON",
    "TAU",
    "fig2_series",
    "fig3a_series",
    "fig3b_series",
    "fig4_series",
    "fig5a_series",
    "fig5b_series",
    "fig6a_series",
    "fig6b_series",
    "fig7a_series",
    "fig7b_series",
    "lpbcast_infection_curve",
    "lpbcast_mean_curve",
    "measurement_reliability",
    "pbcast_infection_curve",
    "pbcast_mean_curve",
    "pbcast_measurement_reliability",
]
