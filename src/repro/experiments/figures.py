"""Experiment library regenerating every figure of the paper.

Each ``figN_*`` function computes exactly the series the paper's figure
plots; the bench files print them with
:func:`repro.metrics.format_series` and assert the qualitative shape
documented in DESIGN.md §3.

Scaling note (EXPERIMENTS.md): the paper's measurement runs published
40 events per process per round on 125 workstations.  Re-running that load
at full scale inside a single-process test suite is possible but slow, so
the reliability benches use a *scaled* load with the same buffer-pressure
ratio — the quantity that drives the Fig. 6 curves — and sweep the same
parameter ranges (l = 15..35, |eventIds|m = 0..120).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..analysis import (
    InfectionMarkovChain,
    expected_rounds_to_fraction,
    psi_curve,
)
from ..core import LpbcastConfig
from ..metrics import (
    DeliveryLog,
    InfectionObserver,
    mean_curves,
    measure_reliability,
)
from ..pbcast import FIRST_PHASE_NONE, PbcastConfig, build_pbcast_nodes
from ..sim import (
    AsyncGossipRuntime,
    BroadcastWorkload,
    NetworkModel,
    RoundSimulation,
    ShardedRoundSimulation,
    build_lpbcast_nodes,
    create_simulation,
    uniform_latency,
)

EPSILON = 0.05  # message-loss assumption (Sec. 4.1)
TAU = 0.01      # crash assumption (Sec. 4.1)


# ---------------------------------------------------------------------------
# Simulation primitives
# ---------------------------------------------------------------------------

def lpbcast_infection_curve(
    n: int,
    l: int,
    fanout: int = 3,
    seed: int = 0,
    rounds: int = 10,
    loss_rate: float = EPSILON,
    config_overrides: Dict = None,
    engine: str = "serial",
    shards: int = None,
) -> List[int]:
    """One dissemination run; returns the per-round infected counts.

    ``engine`` selects the round engine (``"serial"`` or ``"sharded"``,
    see :func:`repro.sim.create_simulation`); the curve is identical for
    either — sharding only changes the wall clock at large ``n``.
    """
    overrides = dict(fanout=fanout, view_max=l)
    if config_overrides:
        overrides.update(config_overrides)
    cfg = LpbcastConfig(**overrides)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    sim = create_simulation(
        engine,
        network=NetworkModel(loss_rate=loss_rate,
                             rng=random.Random(seed + 7919)),
        seed=seed,
        shards=shards,
    )
    try:
        sim.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        event = nodes[0].lpb_cast("bench", now=0.0)
        observer = InfectionObserver(log, event.event_id)
        sim.add_observer(observer.on_round)
        sim.run(rounds)
    finally:
        if isinstance(sim, ShardedRoundSimulation):
            sim.close()
    return observer.curve(rounds)


def lpbcast_mean_curve(
    n: int, l: int, seeds: Sequence[int], fanout: int = 3, rounds: int = 10,
    config_overrides: Dict = None,
) -> List[float]:
    return mean_curves([
        lpbcast_infection_curve(n, l, fanout=fanout, seed=seed, rounds=rounds,
                                config_overrides=config_overrides)
        for seed in seeds
    ])


def pbcast_infection_curve(
    n: int,
    membership: str,
    l: int = 15,
    fanout: int = 5,
    seed: int = 0,
    rounds: int = 8,
    first_phase: str = FIRST_PHASE_NONE,
) -> List[int]:
    cfg = PbcastConfig(fanout=fanout, view_max=l, first_phase=first_phase)
    nodes = build_pbcast_nodes(n, cfg, seed=seed, membership=membership)
    sim = RoundSimulation(
        NetworkModel(loss_rate=EPSILON, rng=random.Random(seed + 7919)),
        seed=seed,
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    event, first = nodes[0].publish("bench", now=0.0)
    sim.inject(nodes[0].pid, first)
    observer = InfectionObserver(log, event.event_id)
    sim.add_observer(observer.on_round)
    sim.run(rounds)
    return observer.curve(rounds)


def pbcast_mean_curve(
    n: int, membership: str, seeds: Sequence[int], l: int = 15,
    fanout: int = 5, rounds: int = 8,
) -> List[float]:
    return mean_curves([
        pbcast_infection_curve(n, membership, l=l, fanout=fanout,
                               seed=seed, rounds=rounds)
        for seed in seeds
    ])


def measurement_reliability(
    n: int = 125,
    l: int = 15,
    fanout: int = 3,
    event_ids_max: int = 60,
    events_max: int = 60,
    publishers: int = 25,
    rate: int = 1,
    publish_window: Tuple[float, float] = (2.0, 10.0),
    horizon: float = 30.0,
    seed: int = 0,
) -> float:
    """One reliability measurement on the asynchronous runtime (the
    Sec. 5.2 testbed substitute); returns the 1-β estimate."""
    cfg = LpbcastConfig(
        fanout=fanout,
        view_max=l,
        event_ids_max=event_ids_max,
        events_max=events_max,
    )
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    net = NetworkModel(
        loss_rate=EPSILON,
        rng=random.Random(seed + 104729),
        latency=uniform_latency(0.05, 0.5),
    )
    runtime = AsyncGossipRuntime(network=net, seed=seed)
    runtime.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    workload = BroadcastWorkload(
        nodes[:publishers], events_per_round=rate,
        start=publish_window[0], stop=publish_window[1],
    )
    runtime.on_tick_complete(workload.on_tick)
    runtime.run_until(horizon)
    report = measure_reliability(
        log, workload.published_ids(), [node.pid for node in nodes]
    )
    return report.reliability


def pbcast_measurement_reliability(
    n: int = 125,
    l: int = 15,
    fanout: int = 5,
    event_ids_max: int = 60,
    publishers: int = 25,
    rate: int = 1,
    rounds: int = 30,
    publish_window: Tuple[int, int] = (2, 10),
    seed: int = 0,
) -> float:
    """pbcast reliability under the same buffer pressure (Fig. 7(b))."""
    cfg = PbcastConfig(
        fanout=fanout, view_max=l, event_ids_max=event_ids_max,
        first_phase=FIRST_PHASE_NONE,
    )
    nodes = build_pbcast_nodes(n, cfg, seed=seed, membership="partial")
    sim = RoundSimulation(
        NetworkModel(loss_rate=EPSILON, rng=random.Random(seed + 104729)),
        seed=seed,
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)

    def publish(node, now):
        notification, first = node.publish(None, now)
        sim.inject(node.pid, first)
        return notification

    workload = BroadcastWorkload(
        nodes[:publishers], events_per_round=rate,
        start=publish_window[0], stop=publish_window[1],
        publish_fn=publish,
    )
    sim.add_round_hook(workload.on_round)
    sim.run(rounds)
    report = measure_reliability(
        log, workload.published_ids(), [node.pid for node in nodes]
    )
    return report.reliability


# ---------------------------------------------------------------------------
# Figure series
# ---------------------------------------------------------------------------

def fig2_series(rounds: int = 10) -> Dict[str, List[float]]:
    """Fig. 2: analytical infected-per-round for F = 3..6, n = 125."""
    return {
        f"F={F}": InfectionMarkovChain(125, F, EPSILON, TAU).expected_curve(rounds)
        for F in (3, 4, 5, 6)
    }


def fig3a_series(rounds: int = 10) -> Dict[str, List[float]]:
    """Fig. 3(a): analytical infected-per-round for n = 125..1000, F = 3."""
    return {
        f"n={n}": InfectionMarkovChain(n, 3, EPSILON, TAU).expected_curve(rounds)
        for n in range(125, 1001, 125)
    }


def fig3b_series() -> Tuple[List[int], List[float]]:
    """Fig. 3(b): expected rounds to infect 99% vs n (logarithmic growth)."""
    sizes = list(range(100, 1001, 100))
    rounds = [expected_rounds_to_fraction(n, 3, EPSILON, TAU) for n in sizes]
    return sizes, rounds


def fig4_series() -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 4: partition probability Ψ(i, n, 3) for n = 50, 75, 125."""
    sizes = list(range(4, 26))
    return {
        f"n={n}": psi_curve(n, 3, sizes=[i for i in sizes if i <= n // 2])
        for n in (50, 75, 125)
    }


def fig5a_series(seeds: Sequence[int] = range(5), rounds: int = 10):
    """Fig. 5(a): analysis vs simulation for n = 125, 250, 500."""
    series: Dict[str, List[float]] = {}
    for n in (125, 250, 500):
        chain = InfectionMarkovChain(n, 3, EPSILON, TAU)
        series[f"n={n} theory"] = chain.expected_curve(rounds)
        series[f"n={n} sim"] = lpbcast_mean_curve(n, l=25, seeds=seeds,
                                                  rounds=rounds)
    return series


def fig5b_series(seeds: Sequence[int] = range(5), rounds: int = 8):
    """Fig. 5(b): simulated infection for l = 10, 15, 20 at n = 125."""
    return {
        f"l={l}": lpbcast_mean_curve(125, l=l, seeds=seeds, rounds=rounds)
        for l in (10, 15, 20)
    }


def fig6a_series(seeds: Sequence[int] = range(3)):
    """Fig. 6(a): reliability vs view size l (|eventIds|m = 60)."""
    l_values = [15, 20, 25, 30, 35]
    reliabilities = []
    for l in l_values:
        runs = [
            measurement_reliability(l=l, event_ids_max=60, rate=2, seed=seed)
            for seed in seeds
        ]
        reliabilities.append(sum(runs) / len(runs))
    return l_values, reliabilities


def fig6b_series(seeds: Sequence[int] = range(3)):
    """Fig. 6(b): reliability vs |eventIds|m (l = 15)."""
    sizes = [5, 10, 20, 40, 60, 80, 120]
    reliabilities = []
    for size in sizes:
        runs = [
            measurement_reliability(
                l=15, event_ids_max=size, events_max=max(size, 10),
                rate=2, seed=seed,
            )
            for seed in seeds
        ]
        reliabilities.append(sum(runs) / len(runs))
    return sizes, reliabilities


def fig7a_series(seeds: Sequence[int] = range(5), rounds: int = 7):
    """Fig. 7(a): lpbcast vs pbcast-partial vs pbcast-total (n=125, l=15, F=5)."""
    return {
        "lpbcast l=15 F=5": lpbcast_mean_curve(125, l=15, seeds=seeds,
                                               fanout=5, rounds=rounds),
        "pbcast partial view": pbcast_mean_curve(125, "partial", seeds,
                                                 rounds=rounds),
        "pbcast total view": pbcast_mean_curve(125, "total", seeds,
                                               rounds=rounds),
    }


def fig7b_series(seeds: Sequence[int] = range(3)):
    """Fig. 7(b): pbcast-with-partial-view reliability vs l (F = 5)."""
    l_values = [15, 20, 25, 30, 35]
    reliabilities = []
    for l in l_values:
        runs = [
            pbcast_measurement_reliability(l=l, rate=2, seed=seed)
            for seed in seeds
        ]
        reliabilities.append(sum(runs) / len(runs))
    return l_values, reliabilities
