"""The frame layer: versioned, batched, size-capped datagrams.

A *frame* is one datagram/blob carrying many protocol messages to the same
destination::

    byte 0   version — FRAME_JSON (0x01) or FRAME_BINARY (0x02)
    varint   zigzag sender pid
    varint   message count
    N ×      varint length prefix + encoded message

The version byte keeps the JSON codec on the wire for debugging (and makes
both formats distinguishable from the legacy ``pid|json`` text datagrams,
whose first byte is an ASCII digit).  :func:`pack_datagrams` is the send
path: it batches messages per destination into as few frames as fit the
datagram cap, *splits* gossips whose single-message frame would exceed the
cap into several smaller gossips instead of dropping them, and reports the
(rare) messages that cannot be made to fit at all so the transport can
count and trace them rather than lose them silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.codec import CodecError, from_json, to_json
from .binary import WireEncodeError, decode_binary, encode_binary
from .varint import (
    read_svarint,
    read_uvarint,
    uvarint_len,
    write_svarint,
    write_uvarint,
    zigzag,
)

FRAME_JSON = 0x01
FRAME_BINARY = 0x02

_VERSIONS = (FRAME_JSON, FRAME_BINARY)


def _encode_one(message: object, fmt: str,
                strict: bool = False) -> Tuple[int, bytes]:
    """Encode one message, returning ``(frame_version, blob)``.

    In ``"binary"`` format a message without a binary form falls back to a
    JSON blob (shipped in its own JSON-versioned frame) unless ``strict``.
    """
    if fmt == "binary":
        try:
            return FRAME_BINARY, encode_binary(message,
                                               strict_payloads=strict)
        except WireEncodeError:
            if strict:
                raise
            return FRAME_JSON, to_json(message).encode("utf-8")
    if fmt == "json":
        return FRAME_JSON, to_json(message).encode("utf-8")
    raise ValueError(f"unknown wire format {fmt!r}")


def _assemble(version: int, sender: int, blobs: Sequence[bytes]) -> bytes:
    frame = bytearray([version])
    write_svarint(frame, sender)
    write_uvarint(frame, len(blobs))
    for blob in blobs:
        write_uvarint(frame, len(blob))
        frame += blob
    return bytes(frame)


def encode_frame(sender: int, messages: Sequence[object],
                 fmt: str = "binary") -> bytes:
    """Batch ``messages`` into a single frame (no size cap).

    With ``fmt="binary"``, a message that has no binary form demotes the
    whole frame to the JSON version — one frame carries one format.
    """
    if fmt == "binary":
        try:
            blobs = [encode_binary(m) for m in messages]
            return _assemble(FRAME_BINARY, sender, blobs)
        except WireEncodeError:
            fmt = "json"
    if fmt != "json":
        raise ValueError(f"unknown wire format {fmt!r}")
    blobs = [to_json(m).encode("utf-8") for m in messages]
    return _assemble(FRAME_JSON, sender, blobs)


def decode_frame(data) -> Tuple[int, List[object]]:
    """Frame bytes → ``(sender, messages)``; malformed input of any shape
    raises :class:`~repro.core.codec.CodecError`."""
    if not data:
        raise CodecError("empty frame")
    version = data[0]
    if version not in _VERSIONS:
        raise CodecError(f"unsupported wire version byte {version:#04x}")
    sender, pos = read_svarint(data, 1)
    count, pos = read_uvarint(data, pos)
    if count > len(data):  # every message costs at least one byte
        raise CodecError(f"frame count {count} exceeds input size")
    # Per-message blobs are plain bytes slices, not memoryviews: the inner
    # decoder indexes the blob byte-by-byte, and measured over real gossip
    # frames the memoryview's per-index overhead costs more than the one
    # small copy a slice makes (~12% slower end to end).
    messages: List[object] = []
    for _ in range(count):
        length, pos = read_uvarint(data, pos)
        end = pos + length
        if end > len(data):
            raise CodecError("truncated frame: message overruns input")
        blob = data[pos:end]
        if version == FRAME_BINARY:
            messages.append(decode_binary(blob))
        else:
            try:
                messages.append(from_json(bytes(blob).decode("utf-8")))
            except UnicodeDecodeError as exc:
                raise CodecError(f"invalid UTF-8 in JSON frame: {exc}") from exc
        pos = end
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after frame")
    return sender, messages


# -- oversize splitting -------------------------------------------------------

def _gossip_of(message):
    """The splittable gossip inside ``message`` (possibly wrapped in a
    :class:`~repro.pubsub.peer.TopicEnvelope`), or None."""
    from ..core.message import GossipMessage
    if isinstance(message, GossipMessage):
        return message, None
    from ..pubsub.peer import TopicEnvelope
    if (isinstance(message, TopicEnvelope)
            and isinstance(message.inner, GossipMessage)):
        return message.inner, message.topic
    return None, None


def _halve(gossip):
    """Split a gossip's carried elements into two non-empty halves, taking
    elements field-by-field so progress is guaranteed whenever the gossip
    carries at least two elements in total."""
    fields = ("subs", "unsubs", "events", "event_ids", "heartbeats")
    lengths = [len(getattr(gossip, name)) for name in fields]
    total = sum(lengths)
    if total < 2:
        return None
    budget = total // 2
    first, second = {}, {}
    for name, length in zip(fields, lengths):
        value = getattr(gossip, name)
        take = min(length, budget)
        first[name] = value[:take]
        second[name] = value[take:]
        budget -= take
    make = type(gossip)
    return (make(sender=gossip.sender, **first),
            make(sender=gossip.sender, **second))


def split_oversize(
    message: object,
    fits: Callable[[object], Optional[Tuple[int, bytes]]],
) -> Optional[List[Tuple[object, int, bytes]]]:
    """Split an oversize gossip until every part satisfies ``fits``.

    ``fits(part)`` returns the part's ``(version, blob)`` when the part is
    small enough to ship, else None.  Returns ``[(part, version, blob)]``
    covering every element of the original exactly once, or None when the
    message is not a gossip (or wraps an element that alone exceeds the
    budget) — the caller then counts it as undeliverable instead of
    shipping a truncated datagram.
    """
    gossip, topic = _gossip_of(message)
    if gossip is None:
        return None

    def wrap(part):
        if topic is None:
            return part
        from ..pubsub.peer import TopicEnvelope
        return TopicEnvelope(topic, part)

    def recurse(part) -> Optional[List[Tuple[object, int, bytes]]]:
        wrapped = wrap(part)
        encoded = fits(wrapped)
        if encoded is not None:
            return [(wrapped, encoded[0], encoded[1])]
        halves = _halve(part)
        if halves is None:
            return None
        out: List[Tuple[object, int, bytes]] = []
        for half in halves:
            sub = recurse(half)
            if sub is None:
                return None
            out.extend(sub)
        return out

    return recurse(gossip)


# -- the send-path planner ----------------------------------------------------

@dataclass
class DatagramPlan:
    """What :func:`pack_datagrams` decided for one destination's messages."""

    #: Ready-to-send frames, each within the datagram cap.
    datagrams: List[bytes] = field(default_factory=list)
    #: ``(message, encoded_size)`` for messages that cannot fit even after
    #: splitting — the transport must count and trace these, never drop
    #: them silently.
    oversize: List[Tuple[object, int]] = field(default_factory=list)
    #: ``(message, encoded_size, parts)`` for each gossip that was split.
    splits: List[Tuple[object, int, int]] = field(default_factory=list)


def pack_datagrams(sender: int, messages: Sequence[object],
                   fmt: str = "binary",
                   max_bytes: int = 65_000) -> DatagramPlan:
    """Batch ``messages`` (one destination) into capped frames.

    Messages pack greedily, in order, into as few frames as fit
    ``max_bytes``; a message whose single-message frame would exceed the
    cap is split (gossips) or reported oversize (anything else).
    """
    base = 1 + uvarint_len(zigzag(sender))
    plan = DatagramPlan()

    def frame_size(n_msgs: int, body: int, extra_blob: int) -> int:
        return (base + uvarint_len(n_msgs) + body
                + uvarint_len(extra_blob) + extra_blob)

    def fits_alone(message) -> Optional[Tuple[int, bytes]]:
        version, blob = _encode_one(message, fmt)
        if frame_size(1, 0, len(blob)) <= max_bytes:
            return version, blob
        return None

    encoded: List[Tuple[int, bytes]] = []
    for message in messages:
        version, blob = _encode_one(message, fmt)
        size = frame_size(1, 0, len(blob))
        if size <= max_bytes:
            encoded.append((version, blob))
            continue
        parts = split_oversize(message, fits_alone)
        if parts is None:
            plan.oversize.append((message, size))
            continue
        plan.splits.append((message, size, len(parts)))
        encoded.extend((version, blob) for _part, version, blob in parts)

    # One frame carries one format; preserve order within each format.
    for wanted in _VERSIONS:
        pending: List[bytes] = []
        body = 0
        for version, blob in encoded:
            if version != wanted:
                continue
            if pending and frame_size(len(pending) + 1, body,
                                      len(blob)) > max_bytes:
                plan.datagrams.append(_assemble(wanted, sender, pending))
                pending, body = [], 0
            pending.append(blob)
            body += uvarint_len(len(blob)) + len(blob)
        if pending:
            plan.datagrams.append(_assemble(wanted, sender, pending))
    return plan
