"""The compact binary message codec.

One tagged binary record per protocol message type — the same set of
types :mod:`repro.core.codec` maps to JSON — built from varints
(:mod:`repro.wire.varint`), 8-byte IEEE doubles for timestamps, and
length-prefixed UTF-8 for strings.  Event-id digests use the Sec. 3.2
per-sender structure: the id list is encoded as *runs* of consecutive ids
sharing an origin, each run carrying a zigzag origin delta, a length, and
zigzag sequence-number deltas — so both the grouped compact digest
(:class:`~repro.core.buffers.CompactEventIdDigest` frontiers) and plain
FIFO snapshots shrink to a few bytes per id, while any ordering round-trips
exactly.

Notification payloads are opaque to the protocol and travel as embedded
compact JSON, exactly as lossy or faithful as the JSON wire format itself.
``strict_payloads=True`` (the cross-shard setting) additionally demands the
payload survive the JSON round trip *unchanged* — tuples, non-string dict
keys and NaN are refused with :class:`WireEncodeError` so the sharded
engine can fall back to pickle instead of silently altering a payload the
serial engine would have passed by reference.

Decoding is total: unknown tags, truncated records, oversized varints and
trailing bytes all raise :class:`~repro.core.codec.CodecError`.
"""

from __future__ import annotations

import json
import math
import struct
from typing import Callable, Dict, List, Tuple

from ..core.codec import CodecError
from ..core.events import Notification, Unsubscription
from ..core.ids import EventId
from ..core.message import (
    EchoMessage,
    GossipMessage,
    ReadyMessage,
    RetransmitRequest,
    RetransmitResponse,
    SubscriptionAck,
    SubscriptionRequest,
)
from ..loggers.messages import (
    LogUpload,
    LogUploadAck,
    RecoveryRequest,
    RecoveryResponse,
)
from ..pbcast.messages import PbcastData, PbcastDigest, PbcastSolicit
from .varint import (
    VarintRangeError,
    read_svarint,
    read_svarint_run,
    read_uvarint,
    write_svarint,
    write_uvarint,
)


class WireEncodeError(CodecError):
    """A message has no faithful binary form (unsupported type, out-of-range
    integer, non-string topic, or — under ``strict_payloads`` — a payload
    that would not survive the JSON round trip unchanged)."""


# -- message tags -------------------------------------------------------------

TAG_GOSSIP = 0x01
TAG_SUB_REQUEST = 0x02
TAG_SUB_ACK = 0x03
TAG_RETR_REQUEST = 0x04
TAG_RETR_RESPONSE = 0x05
TAG_PBCAST_DATA = 0x06
TAG_PBCAST_DIGEST = 0x07
TAG_PBCAST_SOLICIT = 0x08
TAG_LOG_UPLOAD = 0x09
TAG_LOG_ACK = 0x0A
TAG_RECOVERY_REQUEST = 0x0B
TAG_RECOVERY_RESPONSE = 0x0C
TAG_TOPIC_ENVELOPE = 0x0D
TAG_ECHO = 0x0E
TAG_READY = 0x0F
# Causal-delivery records: identical layout to their base tags except that
# every carried notification is followed by its dependency metadata
# (``Notification.deps``), delta-run encoded exactly like a digest.  The
# causal tag is chosen iff any carried notification has dependencies, so
# non-causal traffic — and every pre-causal golden vector — keeps its
# byte-identical encoding.
TAG_GOSSIP_CAUSAL = 0x10
TAG_RETR_RESPONSE_CAUSAL = 0x11

_F64 = struct.Struct("<d")


# -- field primitives ---------------------------------------------------------

def _w_f64(buf: bytearray, value: float) -> None:
    buf += _F64.pack(value)


def _r_f64(data, pos: int) -> Tuple[float, int]:
    end = pos + 8
    if end > len(data):
        raise CodecError("truncated float64")
    return _F64.unpack_from(data, pos)[0], end


def _w_str(buf: bytearray, value: str) -> None:
    if not isinstance(value, str):
        raise WireEncodeError(f"expected str, got {type(value).__name__}")
    raw = value.encode("utf-8")
    write_uvarint(buf, len(raw))
    buf += raw


def _r_str(data, pos: int) -> Tuple[str, int]:
    length, pos = read_uvarint(data, pos)
    end = pos + length
    if end > len(data):
        raise CodecError("truncated string")
    try:
        return bytes(data[pos:end]).decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise CodecError(f"invalid UTF-8 string: {exc}") from exc


def _payload_is_stable(payload) -> bool:
    """True when ``payload`` survives a JSON round trip as an equal object."""
    if payload is None or payload is True or payload is False:
        return True
    kind = type(payload)
    if kind is int or kind is str:
        return True
    if kind is float:
        return not math.isnan(payload)
    if kind is list:
        return all(_payload_is_stable(item) for item in payload)
    if kind is dict:
        return all(type(key) is str and _payload_is_stable(value)
                   for key, value in payload.items())
    return False


def _w_payload(buf: bytearray, payload, strict: bool) -> None:
    """Opaque payload: length-prefixed compact JSON; length 0 means None
    (valid JSON is never empty, so the encoding is unambiguous)."""
    if payload is None:
        write_uvarint(buf, 0)
        return
    if strict and not _payload_is_stable(payload):
        raise WireEncodeError(
            f"payload {payload!r} does not survive the JSON round trip"
        )
    try:
        raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireEncodeError(f"unencodable payload: {exc}") from exc
    write_uvarint(buf, len(raw))
    buf += raw


def _r_payload(data, pos: int):
    length, pos = read_uvarint(data, pos)
    if length == 0:
        return None, pos
    end = pos + length
    if end > len(data):
        raise CodecError("truncated payload")
    try:
        return json.loads(bytes(data[pos:end]).decode("utf-8")), end
    except (ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"invalid payload JSON: {exc}") from exc


def _w_pid_list(buf: bytearray, pids) -> None:
    """Process-id list as zigzag deltas from the previous entry."""
    write_uvarint(buf, len(pids))
    previous = 0
    for pid in pids:
        write_svarint(buf, pid - previous)
        previous = pid


def _r_pid_list(data, pos: int, limit: int) -> Tuple[Tuple[int, ...], int]:
    count, pos = read_uvarint(data, pos)
    if count > limit:
        raise CodecError(f"pid list length {count} exceeds input size")
    deltas, pos = read_svarint_run(data, pos, count)
    out: List[int] = []
    append = out.append
    previous = 0
    for delta in deltas:
        previous += delta
        append(previous)
    return tuple(out), pos


def _w_event_ids(buf: bytearray, event_ids) -> None:
    """Digest encoding: runs of consecutive ids sharing an origin.

    Each run is ``(zigzag origin delta, length, zigzag seq deltas)``; the
    first seq of a run is a delta from 0, later seqs are deltas from their
    predecessor, so the in-sequence digests the paper's per-sender buffers
    maintain cost about one byte per id.
    """
    write_uvarint(buf, len(event_ids))
    previous_origin = 0
    index, total = 0, len(event_ids)
    while index < total:
        origin = event_ids[index].origin
        run_end = index + 1
        while run_end < total and event_ids[run_end].origin == origin:
            run_end += 1
        write_svarint(buf, origin - previous_origin)
        write_uvarint(buf, run_end - index)
        previous_seq = 0
        for position in range(index, run_end):
            seq = event_ids[position].seq
            write_svarint(buf, seq - previous_seq)
            previous_seq = seq
        previous_origin = origin
        index = run_end


def _r_event_ids(data, pos: int, limit: int) -> Tuple[Tuple[EventId, ...], int]:
    count, pos = read_uvarint(data, pos)
    if count > limit:
        raise CodecError(f"event-id list length {count} exceeds input size")
    out: List[EventId] = []
    append = out.append
    previous_origin = 0
    while len(out) < count:
        delta, pos = read_svarint(data, pos)
        origin = previous_origin + delta
        run_length, pos = read_uvarint(data, pos)
        if run_length < 1 or len(out) + run_length > count:
            raise CodecError(f"malformed event-id run of length {run_length}")
        seq_deltas, pos = read_svarint_run(data, pos, run_length)
        previous_seq = 0
        for seq_delta in seq_deltas:
            previous_seq += seq_delta
            append(EventId(origin, previous_seq))
        previous_origin = origin
    return tuple(out), pos


def _w_notification(buf: bytearray, n: Notification, strict: bool,
                    allow_deps: bool = False) -> None:
    """Base 3-field notification record.

    Dependency metadata has a binary form only inside the dissemination
    records that grew causal variants (gossip / retransmit response, tags
    0x10/0x11); every other notification-bearing record is defined on the
    deps-free form and must refuse — not silently strip — a deps-carrying
    notification, so the shard/frame layers fall back to their lossless
    encodings instead of corrupting the causal metadata.
    """
    if n.deps and not allow_deps:
        raise WireEncodeError(
            f"notification {n.event_id} carries {len(n.deps)} causal "
            f"dependencies but this record type has no causal binary form "
            f"(only gossip and retransmit responses do)")
    write_svarint(buf, n.event_id.origin)
    write_svarint(buf, n.event_id.seq)
    _w_f64(buf, n.created_at)
    _w_payload(buf, n.payload, strict)


def _r_notification(data, pos: int) -> Tuple[Notification, int]:
    origin, pos = read_svarint(data, pos)
    seq, pos = read_svarint(data, pos)
    created_at, pos = _r_f64(data, pos)
    payload, pos = _r_payload(data, pos)
    return Notification(EventId(origin, seq), payload, created_at), pos


def _w_notifications(buf: bytearray, events, strict: bool) -> None:
    write_uvarint(buf, len(events))
    for n in events:
        _w_notification(buf, n, strict)


def _r_notifications(data, pos: int,
                     limit: int) -> Tuple[Tuple[Notification, ...], int]:
    count, pos = read_uvarint(data, pos)
    if count > limit:
        raise CodecError(f"notification list length {count} exceeds input")
    out = []
    for _ in range(count):
        n, pos = _r_notification(data, pos)
        out.append(n)
    return tuple(out), pos


def _w_notification_causal(buf: bytearray, n: Notification,
                           strict: bool) -> None:
    """Causal layout: the base notification record followed by its
    vector-interval dependency metadata, reusing the digest run encoding
    (the deps tuple is sorted by origin, the run encoder's best case)."""
    _w_notification(buf, n, strict, allow_deps=True)
    _w_event_ids(buf, n.deps)


def _r_notification_causal(data, pos: int,
                           limit: int) -> Tuple[Notification, int]:
    n, pos = _r_notification(data, pos)
    deps, pos = _r_event_ids(data, pos, limit)
    if deps:
        n = n._replace(deps=deps)
    return n, pos


def _w_notifications_causal(buf: bytearray, events, strict: bool) -> None:
    write_uvarint(buf, len(events))
    for n in events:
        _w_notification_causal(buf, n, strict)


def _r_notifications_causal(data, pos: int,
                            limit: int) -> Tuple[Tuple[Notification, ...], int]:
    count, pos = read_uvarint(data, pos)
    if count > limit:
        raise CodecError(f"notification list length {count} exceeds input")
    out = []
    for _ in range(count):
        n, pos = _r_notification_causal(data, pos, limit)
        out.append(n)
    return tuple(out), pos


def _any_deps(events) -> bool:
    return any(n.deps for n in events)


def _w_unsubs(buf: bytearray, unsubs) -> None:
    write_uvarint(buf, len(unsubs))
    for u in unsubs:
        write_svarint(buf, u.pid)
        _w_f64(buf, u.timestamp)


def _r_unsubs(data, pos: int,
              limit: int) -> Tuple[Tuple[Unsubscription, ...], int]:
    count, pos = read_uvarint(data, pos)
    if count > limit:
        raise CodecError(f"unsubscription list length {count} exceeds input")
    out = []
    for _ in range(count):
        pid, pos = read_svarint(data, pos)
        ts, pos = _r_f64(data, pos)
        out.append(Unsubscription(pid, ts))
    return tuple(out), pos


def _w_heartbeats(buf: bytearray, heartbeats) -> None:
    write_uvarint(buf, len(heartbeats))
    for pid, counter in heartbeats:
        write_svarint(buf, pid)
        write_svarint(buf, counter)


def _r_heartbeats(data, pos: int, limit: int) -> Tuple[tuple, int]:
    count, pos = read_uvarint(data, pos)
    if count > limit:
        raise CodecError(f"heartbeat list length {count} exceeds input size")
    flat, pos = read_svarint_run(data, pos, count * 2)
    return tuple(zip(flat[0::2], flat[1::2])), pos


# -- per-type bodies ----------------------------------------------------------

def _enc_gossip(buf: bytearray, m: GossipMessage, strict: bool,
                causal: bool = False) -> None:
    write_svarint(buf, m.sender)
    _w_pid_list(buf, m.subs)
    _w_unsubs(buf, m.unsubs)
    if causal:
        _w_notifications_causal(buf, m.events, strict)
    else:
        _w_notifications(buf, m.events, strict)
    _w_event_ids(buf, m.event_ids)
    _w_heartbeats(buf, m.heartbeats)


def _dec_gossip(data, pos: int, limit: int,
                causal: bool = False) -> Tuple[GossipMessage, int]:
    sender, pos = read_svarint(data, pos)
    subs, pos = _r_pid_list(data, pos, limit)
    unsubs, pos = _r_unsubs(data, pos, limit)
    if causal:
        events, pos = _r_notifications_causal(data, pos, limit)
    else:
        events, pos = _r_notifications(data, pos, limit)
    event_ids, pos = _r_event_ids(data, pos, limit)
    heartbeats, pos = _r_heartbeats(data, pos, limit)
    return GossipMessage(sender=sender, subs=subs, unsubs=unsubs,
                         events=events, event_ids=event_ids,
                         heartbeats=heartbeats), pos


def _encode_body(buf: bytearray, message, strict: bool) -> None:
    kind = type(message)
    if kind is GossipMessage:
        if _any_deps(message.events):
            buf.append(TAG_GOSSIP_CAUSAL)
            _enc_gossip(buf, message, strict, causal=True)
        else:
            buf.append(TAG_GOSSIP)
            _enc_gossip(buf, message, strict)
    elif kind is SubscriptionRequest:
        buf.append(TAG_SUB_REQUEST)
        write_svarint(buf, message.subscriber)
    elif kind is SubscriptionAck:
        buf.append(TAG_SUB_ACK)
        write_svarint(buf, message.contact)
        _w_pid_list(buf, message.view_sample)
    elif kind is RetransmitRequest:
        buf.append(TAG_RETR_REQUEST)
        write_svarint(buf, message.requester)
        _w_event_ids(buf, message.event_ids)
    elif kind is RetransmitResponse:
        if _any_deps(message.events):
            buf.append(TAG_RETR_RESPONSE_CAUSAL)
            write_svarint(buf, message.responder)
            _w_notifications_causal(buf, message.events, strict)
        else:
            buf.append(TAG_RETR_RESPONSE)
            write_svarint(buf, message.responder)
            _w_notifications(buf, message.events, strict)
    elif kind is PbcastData:
        buf.append(TAG_PBCAST_DATA)
        write_svarint(buf, message.sender)
        _w_notification(buf, message.notification, strict)
        write_svarint(buf, message.hops)
    elif kind is PbcastDigest:
        buf.append(TAG_PBCAST_DIGEST)
        write_svarint(buf, message.sender)
        _w_event_ids(buf, message.ids)
        _w_pid_list(buf, message.subs)
        _w_unsubs(buf, message.unsubs)
    elif kind is PbcastSolicit:
        buf.append(TAG_PBCAST_SOLICIT)
        write_svarint(buf, message.requester)
        _w_event_ids(buf, message.ids)
    elif kind is LogUpload:
        buf.append(TAG_LOG_UPLOAD)
        write_svarint(buf, message.sender)
        _w_notification(buf, message.notification, strict)
    elif kind is LogUploadAck:
        buf.append(TAG_LOG_ACK)
        write_svarint(buf, message.logger)
        write_svarint(buf, message.event_id.origin)
        write_svarint(buf, message.event_id.seq)
    elif kind is EchoMessage or kind is ReadyMessage:
        buf.append(TAG_ECHO if kind is EchoMessage else TAG_READY)
        write_svarint(buf, message.sender)
        write_svarint(buf, message.event_id.origin)
        write_svarint(buf, message.event_id.seq)
        if not isinstance(message.digest, int) or message.digest < 0:
            raise WireEncodeError(
                f"echo/ready digest must be a non-negative int, "
                f"got {message.digest!r}"
            )
        write_uvarint(buf, message.digest)
    elif kind is RecoveryRequest:
        buf.append(TAG_RECOVERY_REQUEST)
        write_svarint(buf, message.requester)
        _w_event_ids(buf, message.frontier)
    elif kind is RecoveryResponse:
        buf.append(TAG_RECOVERY_RESPONSE)
        write_svarint(buf, message.logger)
        _w_notifications(buf, message.events, strict)
        buf.append(1 if message.complete else 0)
    else:
        # Pub/sub envelopes nest another message; import lazily to avoid a
        # package cycle (pubsub imports core), mirroring the JSON codec.
        from ..pubsub.peer import TopicEnvelope
        if isinstance(message, TopicEnvelope):
            buf.append(TAG_TOPIC_ENVELOPE)
            _w_str(buf, message.topic)
            _encode_body(buf, message.inner, strict)
        else:
            raise WireEncodeError(
                f"cannot binary-encode {type(message).__name__}"
            )


def _decode_body(data, pos: int) -> Tuple[object, int]:
    if pos >= len(data):
        raise CodecError("truncated message: missing tag byte")
    tag = data[pos]
    pos += 1
    limit = len(data)  # every list element costs >= 1 byte on the wire
    if tag == TAG_GOSSIP:
        return _dec_gossip(data, pos, limit)
    if tag == TAG_GOSSIP_CAUSAL:
        return _dec_gossip(data, pos, limit, causal=True)
    if tag == TAG_RETR_RESPONSE_CAUSAL:
        pid, pos = read_svarint(data, pos)
        events, pos = _r_notifications_causal(data, pos, limit)
        return RetransmitResponse(pid, events), pos
    if tag == TAG_SUB_REQUEST:
        pid, pos = read_svarint(data, pos)
        return SubscriptionRequest(pid), pos
    if tag == TAG_SUB_ACK:
        contact, pos = read_svarint(data, pos)
        sample, pos = _r_pid_list(data, pos, limit)
        return SubscriptionAck(contact, sample), pos
    if tag == TAG_RETR_REQUEST:
        pid, pos = read_svarint(data, pos)
        ids, pos = _r_event_ids(data, pos, limit)
        return RetransmitRequest(pid, ids), pos
    if tag == TAG_RETR_RESPONSE:
        pid, pos = read_svarint(data, pos)
        events, pos = _r_notifications(data, pos, limit)
        return RetransmitResponse(pid, events), pos
    if tag == TAG_PBCAST_DATA:
        sender, pos = read_svarint(data, pos)
        n, pos = _r_notification(data, pos)
        hops, pos = read_svarint(data, pos)
        return PbcastData(sender, n, hops), pos
    if tag == TAG_PBCAST_DIGEST:
        sender, pos = read_svarint(data, pos)
        ids, pos = _r_event_ids(data, pos, limit)
        subs, pos = _r_pid_list(data, pos, limit)
        unsubs, pos = _r_unsubs(data, pos, limit)
        return PbcastDigest(sender, ids, subs, unsubs), pos
    if tag == TAG_PBCAST_SOLICIT:
        pid, pos = read_svarint(data, pos)
        ids, pos = _r_event_ids(data, pos, limit)
        return PbcastSolicit(pid, ids), pos
    if tag == TAG_LOG_UPLOAD:
        sender, pos = read_svarint(data, pos)
        n, pos = _r_notification(data, pos)
        return LogUpload(sender, n), pos
    if tag == TAG_LOG_ACK:
        logger, pos = read_svarint(data, pos)
        origin, pos = read_svarint(data, pos)
        seq, pos = read_svarint(data, pos)
        return LogUploadAck(logger, EventId(origin, seq)), pos
    if tag == TAG_ECHO or tag == TAG_READY:
        sender, pos = read_svarint(data, pos)
        origin, pos = read_svarint(data, pos)
        seq, pos = read_svarint(data, pos)
        digest, pos = read_uvarint(data, pos)
        kind = EchoMessage if tag == TAG_ECHO else ReadyMessage
        return kind(sender, EventId(origin, seq), digest), pos
    if tag == TAG_RECOVERY_REQUEST:
        pid, pos = read_svarint(data, pos)
        frontier, pos = _r_event_ids(data, pos, limit)
        return RecoveryRequest(pid, frontier), pos
    if tag == TAG_RECOVERY_RESPONSE:
        logger, pos = read_svarint(data, pos)
        events, pos = _r_notifications(data, pos, limit)
        if pos >= len(data):
            raise CodecError("truncated message: missing complete flag")
        complete = data[pos] != 0
        return RecoveryResponse(logger, events, complete), pos + 1
    if tag == TAG_TOPIC_ENVELOPE:
        from ..pubsub.peer import TopicEnvelope
        topic, pos = _r_str(data, pos)
        inner, pos = _decode_body(data, pos)
        return TopicEnvelope(topic, inner), pos
    raise CodecError(f"unknown binary message tag {tag:#04x}")


# -- public surface -----------------------------------------------------------

def encode_binary(message: object, strict_payloads: bool = False) -> bytes:
    """Message object → compact binary record.

    ``strict_payloads=True`` refuses (with :class:`WireEncodeError`) any
    notification payload that would not survive the embedded-JSON round
    trip as an equal object — the setting the cross-shard path uses to
    decide between the binary format and its pickle fallback.
    """
    buf = bytearray()
    try:
        _encode_body(buf, message, strict_payloads)
    except VarintRangeError as exc:
        raise WireEncodeError(str(exc)) from exc
    return bytes(buf)


def decode_binary(data) -> object:
    """Binary record → message object; the whole input must be consumed."""
    message, pos = _decode_body(data, 0)
    if pos != len(data):
        raise CodecError(
            f"{len(data) - pos} trailing bytes after binary message"
        )
    return message


def wire_bytes_of(message: object) -> int:
    """Exact binary wire size of ``message`` in bytes, or ``-1`` when the
    message has no binary form (byte-accounting callers label those
    separately instead of guessing)."""
    try:
        return len(encode_binary(message))
    except CodecError:
        return -1
