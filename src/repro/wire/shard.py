"""Cross-shard payload blobs for the sharded round engine.

The sharded engine ships batches of protocol messages between worker
processes (:meth:`~repro.sim.parallel_runner._ShardState.do_fetch`).  This
module is that batch format: the compact binary codec with strict payload
checking, falling back to pickle for the whole batch when any message has
no *faithful* binary form — a custom message type, or a notification
payload (tuple, non-string dict keys, NaN) that the JSON embedding would
alter.  The fallback keeps the engine's bit-identity contract intact: a
decoded cross-shard message is always equal to the object the serial
engine would have passed by reference.

Blob layout: a one-byte format marker (:data:`BLOB_PICKLE` /
:data:`BLOB_BINARY`), then either the pickle bytes or a varint count
followed by length-prefixed binary records.
"""

from __future__ import annotations

import pickle
from typing import List, Sequence

from ..core.codec import CodecError
from .binary import WireEncodeError, decode_binary, encode_binary
from .varint import read_uvarint, write_uvarint

BLOB_PICKLE = 0x00
BLOB_BINARY = 0x02


def pack_messages(messages: Sequence[object],
                  wire_format: str = "binary") -> bytes:
    """Message batch → self-describing blob.

    ``wire_format="binary"`` tries the strict binary codec and silently
    falls back to pickle when any message is not faithfully encodable;
    ``"pickle"`` forces the legacy path (the escape hatch for debugging a
    suspected codec divergence).
    """
    if wire_format == "binary":
        try:
            buf = bytearray([BLOB_BINARY])
            write_uvarint(buf, len(messages))
            for message in messages:
                blob = encode_binary(message, strict_payloads=True)
                write_uvarint(buf, len(blob))
                buf += blob
            return bytes(buf)
        except WireEncodeError:
            pass
    elif wire_format != "pickle":
        raise ValueError(f"unknown shard wire format {wire_format!r}")
    return bytes([BLOB_PICKLE]) + pickle.dumps(
        list(messages), protocol=pickle.HIGHEST_PROTOCOL
    )


def unpack_messages(blob: bytes) -> List[object]:
    """Inverse of :func:`pack_messages`, dispatching on the marker byte."""
    if not blob:
        raise CodecError("empty cross-shard blob")
    marker = blob[0]
    if marker == BLOB_PICKLE:
        return pickle.loads(blob[1:])
    if marker != BLOB_BINARY:
        raise CodecError(f"unknown cross-shard blob marker {marker:#04x}")
    count, pos = read_uvarint(blob, 1)
    if count > len(blob):
        raise CodecError(f"cross-shard count {count} exceeds blob size")
    # Bytes slices on purpose (same measurement as the frame decoder):
    # the inner decoder's byte-by-byte indexing makes memoryview records
    # slower than one small copy per record.
    messages: List[object] = []
    for _ in range(count):
        length, pos = read_uvarint(blob, pos)
        end = pos + length
        if end > len(blob):
            raise CodecError("truncated cross-shard blob")
        messages.append(decode_binary(blob[pos:end]))
        pos = end
    if pos != len(blob):
        raise CodecError(f"{len(blob) - pos} trailing cross-shard bytes")
    return messages
