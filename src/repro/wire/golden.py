"""Golden byte vectors pinning the binary wire format.

Each entry pairs a message object with the exact bytes
:func:`~repro.wire.binary.encode_binary` must produce for it.  These
fixtures are the format's compatibility contract: an encoder change that
alters any vector is a wire-format break and must bump the frame version
byte rather than silently change what peers and shards exchange.
:func:`check_golden_vectors` is asserted by the unit tests *and* by
``bench_hotpath.py --check`` (the CI perf-smoke job), so a drift fails
fast in both places.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.events import Notification, Unsubscription
from ..core.ids import EventId
from ..core.message import (
    EchoMessage,
    GossipMessage,
    ReadyMessage,
    RetransmitRequest,
    RetransmitResponse,
    SubscriptionAck,
)
from ..pbcast.messages import PbcastDigest
from .binary import decode_binary, encode_binary


def _vectors() -> List[Tuple[object, str]]:
    from ..pubsub.peer import TopicEnvelope

    return [
        (GossipMessage(sender=0), "01000000000000"),
        (
            GossipMessage(
                sender=3,
                subs=(1, 2),
                unsubs=(Unsubscription(9, 4.5),),
                events=(Notification(EventId(3, 1), "text", 2.0),),
                event_ids=(EventId(3, 1), EventId(3, 2), EventId(7, 12)),
            ),
            "010602020201120000000000001240010602000000000000004006227465"
            "787422030602020208011800",
        ),
        (
            GossipMessage(sender=2, heartbeats=((2, 17), (5, 3))),
            "0104000000000204220a06",
        ),
        (SubscriptionAck(1, (2, 3, 4)), "030203040202"),
        (RetransmitRequest(9, (EventId(1, 1),)), "041201020102"),
        (
            PbcastDigest(4, (EventId(2, 5),), (1,),
                         (Unsubscription(8, 1.0),)),
            "07080104010a01020110000000000000f03f",
        ),
        (
            TopicEnvelope("t", GossipMessage(sender=1,
                                             event_ids=(EventId(1, 1),
                                                        EventId(1, 2)))),
            "0d01740102000000020202020200",
        ),
        # Double-echo records: digests are payload_digest() values — the
        # first 8 bytes of the payload's canonical-JSON sha256, so the
        # vectors also pin the digest derivation itself.
        (
            EchoMessage(3, EventId(2, 5), 0x5AA762AE383FBB72),
            "0e06040af2f6fec1e3d5d8d35a",
        ),
        (
            ReadyMessage(4, EventId(2, 5), 0x015ABD7F5CC57A2D),
            "0f08040aadf495e6f5afafad01",
        ),
        # Causal-delivery records: the causal tags (0x10/0x11) are selected
        # iff any carried notification has dependency metadata, so these
        # vectors pin both the deps encoding (digest-style delta runs after
        # each notification) and the tag-selection rule — a deps-free
        # message must keep its pre-causal tag and bytes (the vectors
        # above).
        (
            GossipMessage(
                sender=3,
                events=(Notification(EventId(3, 2), "x", 1.0,
                                     deps=(EventId(1, 4), EventId(3, 1))),),
                event_ids=(EventId(3, 2),),
            ),
            "10060000010604000000000000f03f03227822020201080401020106010400",
        ),
        (
            RetransmitResponse(
                5,
                (Notification(EventId(2, 1), None, 0.0,
                              deps=(EventId(1, 2),)),
                 Notification(EventId(2, 2), "y", 3.0,
                              deps=(EventId(1, 2), EventId(2, 1)))),
            ),
            "110a02040200000000000000000001020104040400000000000008400322"
            "792202020104020102",
        ),
    ]


#: ``(message, hex)`` pairs — the pinned format.
GOLDEN_VECTORS: List[Tuple[object, str]] = _vectors()


def check_golden_vectors() -> int:
    """Assert every vector encodes and decodes exactly; returns the number
    of vectors checked, raises :class:`AssertionError` on any drift."""
    for message, expected_hex in GOLDEN_VECTORS:
        encoded = encode_binary(message)
        if encoded.hex() != expected_hex:
            raise AssertionError(
                f"golden vector drift for {type(message).__name__}: "
                f"expected {expected_hex}, got {encoded.hex()}"
            )
        decoded = decode_binary(bytes.fromhex(expected_hex))
        if decoded != message:
            raise AssertionError(
                f"golden vector for {type(message).__name__} no longer "
                f"decodes to an equal message: got {decoded!r}"
            )
    return len(GOLDEN_VECTORS)
