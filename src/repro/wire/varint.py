"""LEB128 varints and zigzag signed integers.

The integer primitives of the binary wire format: unsigned values go on
the wire base-128 with a continuation bit (small values — the common case
for counts, lengths and digest deltas — cost one byte), signed values are
zigzag-folded first so ids and deltas near zero stay short regardless of
sign.

Decoding is defensive: a truncated varint or one longer than
:data:`MAX_VARINT_BYTES` (an adversarial unbounded-continuation stream)
raises :class:`~repro.core.codec.CodecError`, never an unbounded loop or a
foreign exception.  Encoding enforces the same cap so every value written
is guaranteed decodable.
"""

from __future__ import annotations

from typing import Tuple

from ..core.codec import CodecError

#: Hard cap on one varint's wire length: 10 bytes carry 70 payload bits,
#: comfortably above any id, count or length the protocol produces while
#: bounding what a hostile datagram can make the decoder chew on.
MAX_VARINT_BYTES = 10

_MAX_UVARINT = (1 << (7 * MAX_VARINT_BYTES)) - 1


class VarintRangeError(ValueError):
    """An integer too large for the wire's varint cap (encode side)."""


def uvarint_len(value: int) -> int:
    """Encoded length in bytes of ``value`` as an unsigned varint."""
    if value < 0:
        raise VarintRangeError(f"uvarint cannot encode negative {value}")
    length = 1
    while value > 0x7F:
        value >>= 7
        length += 1
    return length


def write_uvarint(buf: bytearray, value: int) -> None:
    """Append ``value`` to ``buf`` as an unsigned LEB128 varint."""
    if value < 0 or value > _MAX_UVARINT:
        raise VarintRangeError(f"{value} outside uvarint range")
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def read_uvarint(data, pos: int) -> Tuple[int, int]:
    """Read an unsigned varint at ``pos``; returns ``(value, new_pos)``."""
    result = 0
    shift = 0
    end = len(data)
    for count in range(MAX_VARINT_BYTES):
        if pos >= end:
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
    raise CodecError(f"varint longer than {MAX_VARINT_BYTES} bytes")


def zigzag(value: int) -> int:
    """Fold a signed integer into an unsigned one (0, -1, 1, -2 → 0..3)."""
    return value * 2 if value >= 0 else -value * 2 - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


def write_svarint(buf: bytearray, value: int) -> None:
    """Append a signed integer as a zigzag varint."""
    write_uvarint(buf, zigzag(value))


def read_svarint(data, pos: int) -> Tuple[int, int]:
    """Read a zigzag varint at ``pos``; returns ``(value, new_pos)``."""
    raw, pos = read_uvarint(data, pos)
    return unzigzag(raw), pos
