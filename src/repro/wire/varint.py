"""LEB128 varints and zigzag signed integers.

The integer primitives of the binary wire format: unsigned values go on
the wire base-128 with a continuation bit (small values — the common case
for counts, lengths and digest deltas — cost one byte), signed values are
zigzag-folded first so ids and deltas near zero stay short regardless of
sign.

Decoding is defensive: a truncated varint or one longer than
:data:`MAX_VARINT_BYTES` (an adversarial unbounded-continuation stream)
raises :class:`~repro.core.codec.CodecError`, never an unbounded loop or a
foreign exception.  Encoding enforces the same cap so every value written
is guaranteed decodable.
"""

from __future__ import annotations

from typing import Tuple

from ..core.codec import CodecError

#: Hard cap on one varint's wire length: 10 bytes carry 70 payload bits,
#: comfortably above any id, count or length the protocol produces while
#: bounding what a hostile datagram can make the decoder chew on.
MAX_VARINT_BYTES = 10

_MAX_UVARINT = (1 << (7 * MAX_VARINT_BYTES)) - 1


class VarintRangeError(ValueError):
    """An integer too large for the wire's varint cap (encode side)."""


def uvarint_len(value: int) -> int:
    """Encoded length in bytes of ``value`` as an unsigned varint."""
    if value < 0:
        raise VarintRangeError(f"uvarint cannot encode negative {value}")
    length = 1
    while value > 0x7F:
        value >>= 7
        length += 1
    return length


def write_uvarint(buf: bytearray, value: int) -> None:
    """Append ``value`` to ``buf`` as an unsigned LEB128 varint."""
    if value < 0 or value > _MAX_UVARINT:
        raise VarintRangeError(f"{value} outside uvarint range")
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def read_uvarint(data, pos: int) -> Tuple[int, int]:
    """Read an unsigned varint at ``pos``; returns ``(value, new_pos)``."""
    end = len(data)
    if pos < end:
        # One-byte values (counts, lengths, small deltas) dominate real
        # traffic; settle them without entering the continuation loop.
        byte = data[pos]
        if byte < 0x80:
            return byte, pos + 1
    result = 0
    shift = 0
    for count in range(MAX_VARINT_BYTES):
        if pos >= end:
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
    raise CodecError(f"varint longer than {MAX_VARINT_BYTES} bytes")


def zigzag(value: int) -> int:
    """Fold a signed integer into an unsigned one (0, -1, 1, -2 → 0..3)."""
    return value * 2 if value >= 0 else -value * 2 - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


def write_svarint(buf: bytearray, value: int) -> None:
    """Append a signed integer as a zigzag varint."""
    write_uvarint(buf, zigzag(value))


def read_svarint(data, pos: int) -> Tuple[int, int]:
    """Read a zigzag varint at ``pos``; returns ``(value, new_pos)``."""
    if pos < len(data):
        byte = data[pos]
        if byte < 0x80:
            return (byte >> 1) ^ -(byte & 1), pos + 1
    raw, pos = read_uvarint(data, pos)
    return unzigzag(raw), pos


def read_svarint_run(data, pos: int, count: int) -> Tuple[list, int]:
    """Read ``count`` consecutive zigzag varints with one local-offset
    cursor; returns ``(values, new_pos)``.

    The decode hot path: list fields (view pids, digest deltas, heartbeat
    pairs) are runs of svarints, and reading them one
    :func:`read_svarint` call at a time makes Python function-call
    overhead the dominant decode cost.  This reader keeps the offset in a
    local and pays one call per *run* instead of per element, with the
    same truncation/overlong-cap errors as the scalar readers.
    """
    end = len(data)
    values: list = []
    append = values.append
    for _ in range(count):
        if pos >= end:
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        if byte < 0x80:
            append((byte >> 1) ^ -(byte & 1))
            continue
        result = byte & 0x7F
        shift = 7
        while True:
            if pos >= end:
                raise CodecError("truncated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
            if shift >= 7 * MAX_VARINT_BYTES:
                raise CodecError(
                    f"varint longer than {MAX_VARINT_BYTES} bytes")
        append((result >> 1) ^ -(result & 1))
    return values, pos
