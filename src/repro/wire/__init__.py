"""Compact binary wire format shared by the simulators and the runtime.

Sec. 3.2 observes that gossip digests have per-sender structure that lets
them be "considerably reduced in size"; this package is where the repo
exploits it.  Three layers:

* :mod:`repro.wire.varint` — LEB128 varints and zigzag signed encoding,
  the integer primitives everything else is built from;
* :mod:`repro.wire.binary` — a tagged binary record per protocol message
  type (every tag :mod:`repro.core.codec` knows), with event-id digests
  delta-encoded in per-sender runs;
* :mod:`repro.wire.frame` — the datagram layer: a version byte, then many
  length-prefixed messages batched to one destination, with oversize
  gossips *split* across frames instead of dropped.

The binary format is the default UDP datagram format
(:mod:`repro.runtime.udp`) and the default cross-shard payload format of
the sharded engine (:mod:`repro.wire.shard`); the JSON codec remains
available behind its own frame version byte for debugging.  Malformed
input of any kind raises :class:`~repro.core.codec.CodecError`, never
anything else.
"""

from ..core.codec import CodecError
from .binary import (
    WireEncodeError,
    decode_binary,
    encode_binary,
    wire_bytes_of,
)
from .frame import (
    FRAME_BINARY,
    FRAME_JSON,
    DatagramPlan,
    decode_frame,
    encode_frame,
    pack_datagrams,
    split_oversize,
)
from .golden import GOLDEN_VECTORS, check_golden_vectors
from .shard import pack_messages, unpack_messages

__all__ = [
    "CodecError",
    "WireEncodeError",
    "encode_binary",
    "decode_binary",
    "wire_bytes_of",
    "FRAME_BINARY",
    "FRAME_JSON",
    "DatagramPlan",
    "encode_frame",
    "decode_frame",
    "pack_datagrams",
    "split_oversize",
    "pack_messages",
    "unpack_messages",
    "GOLDEN_VECTORS",
    "check_golden_vectors",
]
