"""Structured trace events with bounded buffering.

A :class:`TraceEvent` is one observation in the engine-native trace stream:
a round phase boundary, a gossip send or receive, an application delivery,
an eviction summary, a fault verdict that struck, or an invariant
violation.  Events are buffered in a :class:`TraceBuffer` with a hard
capacity — when the buffer is full new events are counted as dropped rather
than evicting history, so a trace always starts at the beginning of the run
and states how much of its tail is missing.

Sharded runs record events inside shard workers tagged with the same
``(phase, index)`` coordinates the engine uses to replay delivery listeners;
the coordinator merges per-round batches in that canonical order, so the
trace stream of a sharded run lines up with the serial engine's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

# Canonical event kinds (engines may emit additional, namespaced kinds).
ROUND_START = "round.start"
ROUND_END = "round.end"
SEND = "send"
RECEIVE = "receive"
DELIVER = "deliver"
EVICTION = "eviction"
CRASH = "crash"
RECOVERY = "recovery"
FAULT_DROP = "fault.drop"
FAULT_DELAY = "fault.delay"
FAULT_DUPLICATE = "fault.duplicate"
INVARIANT_VIOLATION = "invariant.violation"

TRACE_KINDS = (
    ROUND_START, ROUND_END, SEND, RECEIVE, DELIVER, EVICTION, CRASH,
    RECOVERY, FAULT_DROP, FAULT_DELAY, FAULT_DUPLICATE, INVARIANT_VIOLATION,
)


@dataclass(frozen=True)
class TraceEvent:
    """One traced observation.

    ``at`` is the engine's time coordinate: the round number on round
    engines, simulated seconds on the discrete-event runtime.  ``data``
    holds kind-specific fields (message kind, counts, details) and must stay
    JSON-serializable.
    """

    kind: str
    at: float
    pid: Optional[int] = None
    peer: Optional[int] = None
    data: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "type": "trace",
            "kind": self.kind,
            "at": self.at,
            "pid": self.pid,
            "peer": self.peer,
            "data": dict(self.data),
        }


#: Ordering tag for shard-recorded events: ``(phase, index)`` in the round
#: engines' canonical replay order (see repro.sim.parallel_runner).
TraceTag = Tuple[int, int]


class TraceBuffer:
    """Bounded, append-only event store.

    ``capacity`` bounds memory; once reached, further events only advance
    ``dropped``.  Keeping the head (not the tail) makes truncation explicit
    and deterministic — the same policy the pre-existing
    :class:`repro.sim.trace.Tracer` uses.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def append(self, event: TraceEvent) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            self.append(event)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.kind] = totals.get(event.kind, 0) + 1
        return totals

    def tail(self, count: int) -> List[TraceEvent]:
        return self.events[-count:] if count > 0 else []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
