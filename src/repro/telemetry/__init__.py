"""Engine-native observability: metrics, traces and timing profiles.

Every execution path owns a :class:`Telemetry` registry (``sim.telemetry``
on the round engines and the async runtime, ``deployment.telemetry`` on the
UDP runtime) that engines and instruments write into directly — there is no
monkey-patching anywhere in the measurement path, so the counters survive
pickling into shard workers and serial/sharded runs report identical
totals for the same seed.

* :class:`Telemetry` — labelled counters, gauges, histograms, phase timers
  and the bounded trace-event stream.
* :mod:`~repro.telemetry.events` — the structured trace-event model.
* :mod:`~repro.telemetry.exporters` — JSONL, Prometheus text format and
  terminal summaries (``repro trace`` drives these).
* :mod:`~repro.telemetry.schema` — the documented export schema plus
  validators (the CI telemetry-smoke job runs them).

See docs/api.md ("Telemetry & tracing") for the metric names and the
trace-event schema.
"""

from .events import (
    CRASH,
    DELIVER,
    EVICTION,
    FAULT_DELAY,
    FAULT_DROP,
    FAULT_DUPLICATE,
    INVARIANT_VIOLATION,
    RECEIVE,
    RECOVERY,
    ROUND_END,
    ROUND_START,
    SEND,
    TRACE_KINDS,
    TraceBuffer,
    TraceEvent,
)
from .fingerprint import (
    CounterRecord,
    counter_fingerprint,
    counter_records,
    diff_counter_records,
)
from .exporters import (
    format_counters,
    format_profile,
    iter_export_records,
    profile_summary,
    prometheus_name,
    to_jsonl,
    to_prometheus,
)
from .registry import LabelKey, Telemetry, labels_of
from .schema import (
    SchemaError,
    validate_export_files,
    validate_jsonl,
    validate_prometheus,
    validate_record,
)

__all__ = [
    "counter_fingerprint",
    "counter_records",
    "CounterRecord",
    "CRASH",
    "DELIVER",
    "diff_counter_records",
    "EVICTION",
    "FAULT_DELAY",
    "FAULT_DROP",
    "FAULT_DUPLICATE",
    "format_counters",
    "format_profile",
    "INVARIANT_VIOLATION",
    "iter_export_records",
    "LabelKey",
    "labels_of",
    "profile_summary",
    "prometheus_name",
    "RECEIVE",
    "RECOVERY",
    "ROUND_END",
    "ROUND_START",
    "SchemaError",
    "SEND",
    "Telemetry",
    "to_jsonl",
    "to_prometheus",
    "TRACE_KINDS",
    "TraceBuffer",
    "TraceEvent",
    "validate_export_files",
    "validate_jsonl",
    "validate_prometheus",
    "validate_record",
]
