"""The metric registry engines and nodes write into directly.

One :class:`Telemetry` instance belongs to one execution context: a serial
simulation, the coordinator of a sharded run, one shard worker, an async
runtime, or a UDP deployment.  It holds three metric families plus the
trace stream:

* **counters** — monotone, labelled integers (``inc``); the unit of the
  serial/sharded identity contract: shard-local counters merge into the
  coordinator by summation, which is order-independent, so for the same
  seed the merged totals equal the serial engine's exactly;
* **gauges** — last-written labelled values (``set_gauge``), e.g. the alive
  count after each round;
* **histograms** — ``(count, sum, min, max)`` aggregates (``observe``),
  used for the ``perf_counter`` phase timers exposed by :meth:`time` and
  summarized by :func:`profile_summary`.

Trace events (:mod:`repro.telemetry.events`) are recorded through
:meth:`emit`, gated by the ``tracing`` flag so the per-message stream costs
nothing when off; rare, critical events (invariant violations) pass
``force=True``.

Wall-clock histograms are *profile* data: they merge like counters but are
not part of the bit-identity contract (two runs never time identically).
"""

from __future__ import annotations

import threading
import time as _time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .events import TraceBuffer, TraceEvent, TraceTag

#: Canonical label identity: sorted ``(key, value)`` pairs.
LabelKey = Tuple[Tuple[str, object], ...]

#: Lazily bound :func:`repro.wire.wire_bytes_of` (the wire package imports
#: core modules, so binding at import time here would risk a cycle).
_wire_bytes_of = None


def _label_key(labels: Dict) -> LabelKey:
    return tuple(sorted(labels.items()))


def labels_of(key: LabelKey) -> Dict[str, object]:
    """Back from the canonical tuple to a plain dict (for exports)."""
    return dict(key)


class _Hist:
    """Mergeable ``count/sum/min/max`` aggregate."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, count: int, total: float, minimum: float,
              maximum: float) -> None:
        self.count += count
        self.total += total
        if minimum < self.minimum:
            self.minimum = minimum
        if maximum > self.maximum:
            self.maximum = maximum

    def as_tuple(self) -> Tuple[int, float, float, float]:
        return (self.count, self.total, self.minimum, self.maximum)


class Telemetry:
    """Counter/gauge/histogram registry plus the trace-event stream.

    ``thread_safe=True`` guards every write with a lock — required when
    several threads share one registry (the UDP runtime); simulations are
    single-threaded and skip the lock entirely.
    """

    def __init__(self, thread_safe: bool = False,
                 trace_capacity: int = 100_000) -> None:
        self._counters: Dict[Tuple[str, LabelKey], int] = {}
        self._gauges: Dict[Tuple[str, LabelKey], float] = {}
        self._hists: Dict[Tuple[str, LabelKey], _Hist] = {}
        self._lock: Optional[threading.Lock] = (
            threading.Lock() if thread_safe else None
        )
        self.trace = TraceBuffer(capacity=trace_capacity)
        #: Per-message trace events are recorded only while this is True.
        self.tracing = False
        #: Opt-in byte-accurate bandwidth accounting: when True,
        #: :meth:`record_send` also sizes each message with the binary wire
        #: codec into ``sim.send_bytes``.  Off by default — the extra
        #: counters would otherwise enter every fingerprint
        #: (:func:`~repro.telemetry.fingerprint.counter_records` covers all
        #: counters), perturbing pinned goldens.  The sharded coordinator
        #: ships this flag to its workers with every tick/deliver command,
        #: so both engines always account symmetrically.
        self.count_wire_bytes = False
        #: Ordering tag attached to emitted events (shard workers set it to
        #: the engine's (phase, index) replay coordinates).
        self.trace_tag: Optional[TraceTag] = None
        self._tagged_trace: List[Tuple[TraceTag, TraceEvent]] = []
        #: Per-round cache of prebuilt ``sim.sends*`` counter keys, used by
        #: the :meth:`record_sends` fast path (see its docstring).
        self._send_cache_round: Optional[int] = None
        self._send_kind_keys: Dict[str, Tuple[str, LabelKey]] = {}
        self._send_elements_key: Tuple[str, LabelKey] = ("", ())
        self._send_unsized_key: Tuple[str, LabelKey] = ("", ())

    # -- writes --------------------------------------------------------------
    def inc(self, name: str, value: int = 1, **labels) -> None:
        key = (name, _label_key(labels))
        if self._lock is None:
            self._counters[key] = self._counters.get(key, 0) + value
        else:
            with self._lock:
                self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        key = (name, _label_key(labels))
        if self._lock is None:
            self._gauges[key] = value
        else:
            with self._lock:
                self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        key = (name, _label_key(labels))
        if self._lock is None:
            hist = self._hists.get(key)
            if hist is None:
                hist = self._hists[key] = _Hist()
            hist.observe(value)
        else:
            with self._lock:
                hist = self._hists.get(key)
                if hist is None:
                    hist = self._hists[key] = _Hist()
                hist.observe(value)

    @contextmanager
    def time(self, name: str, **labels):
        """``perf_counter`` phase timer; observes the elapsed seconds into
        the histogram ``name``."""
        started = _time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, _time.perf_counter() - started, **labels)

    def emit(self, kind: str, at: float, pid: Optional[int] = None,
             peer: Optional[int] = None, force: bool = False,
             **data) -> None:
        """Record one trace event (no-op unless ``tracing`` or ``force``)."""
        if not (self.tracing or force):
            return
        event = TraceEvent(kind=kind, at=at, pid=pid, peer=peer, data=data)
        if self.trace_tag is not None:
            self._tagged_trace.append((self.trace_tag, event))
        else:
            self.trace.append(event)

    # -- engine conveniences -------------------------------------------------
    def record_send(self, round_no: int, src, out) -> None:
        """Account one outgoing protocol message at emission time.

        Updates the ``sim.sends`` family (per round and kind), the element
        volume (``size_estimate`` when the message offers one, with a
        separate ``sim.sends_unsized`` count otherwise — control messages
        must not inflate element totals), and the per-sender ledger.  With
        :attr:`count_wire_bytes` on, each message is additionally sized with
        the binary wire codec into ``sim.send_bytes`` (messages without a
        binary form count into ``sim.send_bytes_unsized`` instead).
        """
        message = out.message
        kind = type(message).__name__
        self.inc("sim.sends", 1, round=round_no, kind=kind)
        size = getattr(message, "size_estimate", None)
        if callable(size):
            self.inc("sim.send_elements", size(), round=round_no)
        else:
            self.inc("sim.sends_unsized", 1, round=round_no)
        self.inc("sim.sends_by_sender", 1, src=src)
        if self.count_wire_bytes:
            global _wire_bytes_of
            if _wire_bytes_of is None:
                from ..wire import wire_bytes_of as _wb
                _wire_bytes_of = _wb
            wire_size = _wire_bytes_of(message)
            if wire_size < 0:
                self.inc("sim.send_bytes_unsized", 1, round=round_no)
            else:
                self.inc("sim.send_bytes", wire_size, round=round_no)
        if self.tracing:
            # The message class goes under the ``message`` data key — the
            # event's own ``kind`` field is the trace-event kind ("send").
            self.emit("send", float(round_no), pid=src,
                      peer=out.destination, message=kind)

    def record_sends(self, round_no: int, src, outgoings: Sequence) -> None:
        """Batch form of :meth:`record_send`, called once per tick/handler.

        This is the engine's per-message accounting entry point, so when the
        expensive features are off (no tracing, no lock, no byte accounting)
        it takes a fast path: counter keys for the round are prebuilt once
        and the dict updates are inlined.  The keys match
        :func:`_label_key`'s canonical sorted form exactly, so the recorded
        counter state is byte-identical to the plain path — the
        engine-parity golden test pins this.
        """
        if not outgoings:
            return
        if self.tracing or self._lock is not None or self.count_wire_bytes:
            for out in outgoings:
                self.record_send(round_no, src, out)
            return
        counters = self._counters
        if round_no != self._send_cache_round:
            self._send_cache_round = round_no
            self._send_kind_keys = {}
            self._send_elements_key = (
                "sim.send_elements", (("round", round_no),))
            self._send_unsized_key = (
                "sim.sends_unsized", (("round", round_no),))
        kind_keys = self._send_kind_keys
        elements_key = self._send_elements_key
        unsized_key = self._send_unsized_key
        sender_key = ("sim.sends_by_sender", (("src", src),))
        get = counters.get
        for out in outgoings:
            message = out.message
            kind = type(message).__name__
            skey = kind_keys.get(kind)
            if skey is None:
                skey = kind_keys[kind] = (
                    "sim.sends", (("kind", kind), ("round", round_no)))
            counters[skey] = get(skey, 0) + 1
            size = getattr(message, "size_estimate", None)
            if callable(size):
                counters[elements_key] = get(elements_key, 0) + size()
            else:
                counters[unsized_key] = get(unsized_key, 0) + 1
            counters[sender_key] = get(sender_key, 0) + 1

    # -- reads ---------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> int:
        return self._counters.get((name, _label_key(labels)), 0)

    def counter_total(self, name: str, **match) -> int:
        """Sum of all ``name`` series whose labels include ``match``."""
        wanted = match.items()
        total = 0
        for (metric, key), value in self._counters.items():
            if metric != name:
                continue
            if match and not all(pair in key for pair in sorted(wanted)):
                continue
            total += value
        return total

    def counter_series(self, name: str) -> Dict[LabelKey, int]:
        """All label sets of counter ``name`` with their values."""
        return {key: value for (metric, key), value in self._counters.items()
                if metric == name}

    def label_values(self, name: str, label: str) -> List:
        """Distinct values of ``label`` across counter ``name``'s series."""
        seen = set()
        for (metric, key) in self._counters:
            if metric != name:
                continue
            for k, v in key:
                if k == label:
                    seen.add(v)
        return sorted(seen)

    def gauge_value(self, name: str, **labels) -> Optional[float]:
        return self._gauges.get((name, _label_key(labels)))

    def histogram_stats(self, name: str, **labels
                        ) -> Optional[Tuple[int, float, float, float]]:
        hist = self._hists.get((name, _label_key(labels)))
        return hist.as_tuple() if hist is not None else None

    def counter_names(self) -> List[str]:
        return sorted({metric for metric, _ in self._counters})

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict view of every metric (export layer input)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {key: h.as_tuple()
                           for key, h in self._hists.items()},
        }

    # -- shard merge ---------------------------------------------------------
    def drain_delta(self) -> tuple:
        """Detach and return everything recorded since the last drain, as a
        picklable ``(counters, hists, tagged_trace, dropped)`` tuple.

        Shard workers call this at the end of every command that can record;
        the coordinator folds the result in with :meth:`absorb_delta`.  The
        registry is empty afterwards, so deltas never double-count.
        """
        counters = [(name, key, value)
                    for (name, key), value in self._counters.items()]
        hists = [(name, key) + hist.as_tuple()
                 for (name, key), hist in self._hists.items()]
        tagged = list(self._tagged_trace)
        tagged.extend((None, event) for event in self.trace.events)
        dropped = self.trace.dropped
        self._counters.clear()
        self._hists.clear()
        self._tagged_trace.clear()
        self.trace.events.clear()
        self.trace.dropped = 0
        return (counters, hists, tagged, dropped)

    def absorb_counters(self, delta: tuple) -> List[tuple]:
        """Merge a drained delta's counters and histograms (summation —
        deterministic regardless of shard interleaving); returns the delta's
        tagged trace events for the caller to order and append."""
        counters, hists, tagged, dropped = delta
        for name, key, value in counters:
            full = (name, key)
            self._counters[full] = self._counters.get(full, 0) + value
        for name, key, count, total, minimum, maximum in hists:
            full = (name, key)
            hist = self._hists.get(full)
            if hist is None:
                hist = self._hists[full] = _Hist()
            hist.merge(count, total, minimum, maximum)
        self.trace.dropped += dropped
        return tagged

    def append_trace_ordered(
        self, tagged: Iterable[Tuple[Optional[TraceTag], TraceEvent]]
    ) -> None:
        """Append shard-recorded events in canonical order: stable sort by
        the ``(phase, index)`` tag (untagged events keep arrival order,
        first)."""
        batch = list(tagged)
        batch.sort(key=lambda pair: pair[0] if pair[0] is not None else (-1, -1))
        self.trace.extend(event for _tag, event in batch)
