"""Canonical fingerprints of a registry's deterministic state.

Counters are the unit of the serial/sharded bit-identity contract
(:mod:`repro.telemetry.registry`): for the same root seed both engines must
record *identical* counter series.  This module gives that contract a stable
identity — a canonical sorted record list, a SHA-256 fingerprint over it, and
a structural diff — so the engine-parity tests, the hot-path bench harness
and the DST fuzzer's differential oracle (:mod:`repro.dst`) all compare the
same bytes.

Gauges and histograms are deliberately excluded: gauges are last-writer
state and histograms contain wall-clock timings, neither of which is
deterministic across runs.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

#: One canonical counter record: (name, ((label, repr(value)), ...), count).
CounterRecord = Tuple[str, Tuple[Tuple[str, str], ...], int]


def counter_records(telemetry) -> List[CounterRecord]:
    """The registry's counters as a sorted list of canonical records.

    Label values go through ``repr`` so records are insensitive to dict
    ordering but sensitive to any count, label or metric-name change —
    including type changes such as ``1`` vs ``1.0``.
    """
    records: List[CounterRecord] = []
    for (name, key), value in telemetry.snapshot()["counters"].items():
        records.append(
            (name, tuple((str(k), repr(v)) for k, v in key), value)
        )
    records.sort()
    return records


def counter_fingerprint(telemetry) -> str:
    """SHA-256 hex digest of the canonical counter records."""
    return hashlib.sha256(repr(counter_records(telemetry)).encode()).hexdigest()


def diff_counter_records(
    a: List[CounterRecord], b: List[CounterRecord], limit: int = 10
) -> List[str]:
    """Human-readable lines for every series where ``a`` and ``b`` differ.

    Missing series count as 0, so a record present on one side only shows up
    as ``5 != 0`` rather than being silently skipped.  At most ``limit``
    lines are returned (with a trailing ellipsis line when truncated);
    ``limit <= 0`` means unlimited.
    """
    index_a: Dict[Tuple[str, Tuple], int] = {
        (name, key): value for name, key, value in a
    }
    index_b: Dict[Tuple[str, Tuple], int] = {
        (name, key): value for name, key, value in b
    }
    lines: List[str] = []
    for series in sorted(set(index_a) | set(index_b)):
        left = index_a.get(series, 0)
        right = index_b.get(series, 0)
        if left == right:
            continue
        name, key = series
        labels = ", ".join(f"{k}={v}" for k, v in key)
        label_text = f"{{{labels}}}" if labels else ""
        lines.append(f"{name}{label_text}: {left} != {right}")
    if limit > 0 and len(lines) > limit:
        dropped = len(lines) - limit
        lines = lines[:limit] + [f"... and {dropped} more differing series"]
    return lines
