"""Export surfaces for a :class:`~repro.telemetry.registry.Telemetry`.

Three formats, one source of truth:

* **JSONL** — one self-describing JSON object per line (``type`` is
  ``meta``, ``counter``, ``gauge``, ``histogram`` or ``trace``), the format
  the ``repro trace`` CLI writes and :mod:`repro.telemetry.schema`
  validates;
* **Prometheus text format** — counters/gauges as-is, histograms flattened
  to ``_count``/``_sum``/``_min``/``_max`` gauges, metric names sanitized
  to the Prometheus grammar;
* **terminal summary** — a compact human-readable report (counter totals,
  the timing profile, the trace tail).

All three iterate metrics in sorted order, so exports of equal registries
are byte-identical — the property the serial-vs-sharded CI smoke checks.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterator, List

from .registry import Telemetry, labels_of

_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def iter_export_records(telemetry: Telemetry) -> Iterator[Dict]:
    """Every metric and trace event as schema-conform dictionaries, starting
    with one ``meta`` record."""
    snap = telemetry.snapshot()
    yield {
        "type": "meta",
        "counters": len(snap["counters"]),
        "gauges": len(snap["gauges"]),
        "histograms": len(snap["histograms"]),
        "trace_events": len(telemetry.trace),
        "trace_dropped": telemetry.trace.dropped,
    }
    for (name, key) in sorted(snap["counters"]):
        yield {
            "type": "counter",
            "name": name,
            "labels": _json_labels(key),
            "value": snap["counters"][(name, key)],
        }
    for (name, key) in sorted(snap["gauges"]):
        yield {
            "type": "gauge",
            "name": name,
            "labels": _json_labels(key),
            "value": snap["gauges"][(name, key)],
        }
    for (name, key) in sorted(snap["histograms"]):
        count, total, minimum, maximum = snap["histograms"][(name, key)]
        yield {
            "type": "histogram",
            "name": name,
            "labels": _json_labels(key),
            "count": count,
            "sum": total,
            "min": minimum,
            "max": maximum,
        }
    for event in telemetry.trace:
        yield event.to_dict()


def _json_labels(key) -> Dict[str, str]:
    return {k: str(v) for k, v in labels_of(key).items()}


def to_jsonl(telemetry: Telemetry) -> str:
    """The full registry as JSON lines (ends with a newline)."""
    return "".join(
        json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        for record in iter_export_records(telemetry)
    )


def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name to the Prometheus grammar."""
    cleaned = _PROM_NAME_BAD.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_labels(key) -> str:
    labels = labels_of(key)
    if not labels:
        return ""
    parts = []
    for k in sorted(labels):
        label = _PROM_LABEL_BAD.sub("_", k)
        value = str(labels[k]).replace("\\", r"\\").replace('"', r"\"")
        parts.append(f'{label}="{value}"')
    return "{" + ",".join(parts) + "}"


def to_prometheus(telemetry: Telemetry) -> str:
    """The registry in the Prometheus text exposition format (trace events
    are represented only by their aggregate ``telemetry_trace_*`` gauges)."""
    snap = telemetry.snapshot()
    lines: List[str] = []

    by_name: Dict[str, List] = {}
    for (name, key), value in snap["counters"].items():
        by_name.setdefault(name, []).append((key, value))
    for name in sorted(by_name):
        prom = prometheus_name(name)
        lines.append(f"# TYPE {prom} counter")
        for key, value in sorted(by_name[name]):
            lines.append(f"{prom}{_prom_labels(key)} {value}")

    gauges: Dict[str, List] = {}
    for (name, key), value in snap["gauges"].items():
        gauges.setdefault(name, []).append((key, value))
    gauges.setdefault("telemetry_trace_events", []).append(
        ((), float(len(telemetry.trace))))
    gauges.setdefault("telemetry_trace_dropped", []).append(
        ((), float(telemetry.trace.dropped)))
    for name in sorted(gauges):
        prom = prometheus_name(name)
        lines.append(f"# TYPE {prom} gauge")
        for key, value in sorted(gauges[name]):
            lines.append(f"{prom}{_prom_labels(key)} {value}")

    for (name, key) in sorted(snap["histograms"]):
        count, total, minimum, maximum = snap["histograms"][(name, key)]
        prom = prometheus_name(name)
        labels = _prom_labels(key)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_count{labels} {count}")
        lines.append(f"{prom}_sum{labels} {total}")
        lines.append(f"{prom}_min{labels} {minimum}")
        lines.append(f"{prom}_max{labels} {maximum}")

    return "\n".join(lines) + "\n"


def profile_summary(telemetry: Telemetry, prefix: str = "time.") -> List[Dict]:
    """Timing histograms under ``prefix`` as a list of plain dicts
    (name, calls, total/mean/min/max seconds), sorted by total descending."""
    rows: List[Dict] = []
    snap = telemetry.snapshot()
    for (name, key), (count, total, minimum, maximum) in \
            snap["histograms"].items():
        if not name.startswith(prefix) or count == 0:
            continue
        rows.append({
            "name": name,
            "labels": _json_labels(key),
            "calls": count,
            "total_s": total,
            "mean_s": total / count,
            "min_s": minimum,
            "max_s": maximum,
        })
    rows.sort(key=lambda r: (-r["total_s"], r["name"]))
    return rows


def format_profile(telemetry: Telemetry, prefix: str = "time.") -> str:
    """The profile summary as an aligned text table."""
    rows = profile_summary(telemetry, prefix=prefix)
    if not rows:
        return "no timing data recorded"
    lines = [f"{'phase':<28} {'calls':>7} {'total s':>10} {'mean ms':>10} "
             f"{'max ms':>10}"]
    for row in rows:
        lines.append(
            f"{row['name']:<28} {row['calls']:>7} {row['total_s']:>10.4f} "
            f"{row['mean_s'] * 1e3:>10.3f} {row['max_s'] * 1e3:>10.3f}"
        )
    return "\n".join(lines)


def format_counters(telemetry: Telemetry) -> str:
    """Counter totals aggregated over labels, one line per metric name."""
    names = telemetry.counter_names()
    if not names:
        return "no counters recorded"
    width = max(len(name) for name in names)
    return "\n".join(
        f"{name:<{width}}  {telemetry.counter_total(name)}"
        for name in names
    )
