"""The documented export schema, plus dependency-free validators.

The JSONL stream written by :func:`repro.telemetry.exporters.to_jsonl` (and
``repro trace --jsonl``) contains one object per line; every object carries
a ``type`` discriminator:

``meta``
    ``{"type","counters","gauges","histograms","trace_events",
    "trace_dropped"}`` — all non-negative integers; exactly one per export,
    first line.
``counter`` / ``gauge``
    ``{"type","name","labels","value"}`` — ``name`` a non-empty dotted
    string, ``labels`` a string→string object, ``value`` a number
    (counters: non-negative integer).
``histogram``
    ``{"type","name","labels","count","sum","min","max"}``.
``trace``
    ``{"type","kind","at","pid","peer","data"}`` — ``kind`` a non-empty
    string, ``at`` a number, ``pid``/``peer`` integers or null, ``data`` an
    object.

The validators raise :class:`SchemaError` on the first offending record —
they are what the CI telemetry-smoke job (and the ``--validate`` flag of
``repro trace``) run against real exports, so the schema documented in
``docs/api.md`` cannot silently drift from what the code writes.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable

_NUMBER = (int, float)

_PROM_COMMENT = re.compile(
    r"^# (TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)|HELP .*)$"
)
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                    # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""         # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"    # further labels
    r" -?[0-9.eE+-]+(\s+[0-9]+)?$"                  # value [timestamp]
)


class SchemaError(ValueError):
    """An export record does not match the documented schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _check_labels(record: Dict) -> None:
    labels = record.get("labels")
    _require(isinstance(labels, dict), f"labels must be an object: {record}")
    for key, value in labels.items():
        _require(isinstance(key, str) and key,
                 f"label keys must be non-empty strings: {record}")
        _require(isinstance(value, str),
                 f"label values must be strings: {record}")


def _check_name(record: Dict) -> None:
    name = record.get("name")
    _require(isinstance(name, str) and bool(name),
             f"name must be a non-empty string: {record}")


def validate_record(record: Dict) -> None:
    """Validate one parsed JSONL record; raises :class:`SchemaError`."""
    _require(isinstance(record, dict), f"record must be an object: {record!r}")
    rtype = record.get("type")
    if rtype == "meta":
        for field in ("counters", "gauges", "histograms", "trace_events",
                      "trace_dropped"):
            value = record.get(field)
            _require(isinstance(value, int) and value >= 0,
                     f"meta.{field} must be a non-negative int: {record}")
    elif rtype == "counter":
        _check_name(record)
        _check_labels(record)
        value = record.get("value")
        _require(isinstance(value, int) and value >= 0,
                 f"counter value must be a non-negative int: {record}")
    elif rtype == "gauge":
        _check_name(record)
        _check_labels(record)
        _require(isinstance(record.get("value"), _NUMBER),
                 f"gauge value must be a number: {record}")
    elif rtype == "histogram":
        _check_name(record)
        _check_labels(record)
        _require(isinstance(record.get("count"), int)
                 and record["count"] >= 0,
                 f"histogram count must be a non-negative int: {record}")
        for field in ("sum", "min", "max"):
            _require(isinstance(record.get(field), _NUMBER),
                     f"histogram {field} must be a number: {record}")
    elif rtype == "trace":
        _require(isinstance(record.get("kind"), str) and record["kind"],
                 f"trace kind must be a non-empty string: {record}")
        _require(isinstance(record.get("at"), _NUMBER),
                 f"trace at must be a number: {record}")
        for field in ("pid", "peer"):
            value = record.get(field)
            _require(value is None or isinstance(value, int),
                     f"trace {field} must be an int or null: {record}")
        _require(isinstance(record.get("data"), dict),
                 f"trace data must be an object: {record}")
    else:
        raise SchemaError(f"unknown record type {rtype!r}: {record}")


def validate_jsonl(text: str) -> int:
    """Validate a full JSONL export; returns the record count.

    Beyond per-record checks: the export must be non-empty, start with
    exactly one ``meta`` record, and the meta counts must match the records
    that follow.
    """
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"line {lineno} is not valid JSON: {exc}")
        validate_record(record)
        records.append(record)
    _require(bool(records), "export is empty")
    _require(records[0]["type"] == "meta", "first record must be meta")
    _require(sum(1 for r in records if r["type"] == "meta") == 1,
             "exactly one meta record expected")
    meta = records[0]
    for rtype, field in (("counter", "counters"), ("gauge", "gauges"),
                         ("histogram", "histograms"),
                         ("trace", "trace_events")):
        actual = sum(1 for r in records if r["type"] == rtype)
        _require(actual == meta[field],
                 f"meta says {meta[field]} {rtype} records, found {actual}")
    return len(records)


def validate_prometheus(text: str) -> int:
    """Validate a Prometheus text-format export; returns the sample count."""
    samples = 0
    declared = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            _require(_PROM_COMMENT.match(line) is not None,
                     f"line {lineno}: malformed comment {line!r}")
            declared = True
            continue
        _require(_PROM_SAMPLE.match(line) is not None,
                 f"line {lineno}: malformed sample {line!r}")
        samples += 1
    _require(samples > 0, "no samples in Prometheus export")
    _require(declared, "no TYPE declarations in Prometheus export")
    return samples


def validate_export_files(jsonl_text: str, prometheus_text: str) -> Dict:
    """Validate both export formats; returns the counts (CI smoke entry)."""
    return {
        "jsonl_records": validate_jsonl(jsonl_text),
        "prometheus_samples": validate_prometheus(prometheus_text),
    }
