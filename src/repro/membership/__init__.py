"""Membership layers (Sec. 6.2) and the prioritary-process safeguard (Sec. 4.4).

* :class:`~repro.membership.layer.PartialViewMembership` — lpbcast's
  randomized bounded-view membership, factored out as a reusable layer.
* :class:`~repro.membership.layer.TotalMembership` — the complete-view
  baseline.
* :class:`~repro.membership.bootstrap.PriorityProcessSet` — bootstrap contacts
  and periodic view normalization.
"""

from .bootstrap import PriorityProcessSet, periodic_normalizer
from .layer import MembershipProvider, PartialViewMembership, TotalMembership

__all__ = [
    "MembershipProvider",
    "PartialViewMembership",
    "periodic_normalizer",
    "PriorityProcessSet",
    "TotalMembership",
]
