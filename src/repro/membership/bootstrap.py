"""Prioritary processes (Sec. 4.4).

"A priori, it is not possible to recover from such a partition.  To avoid
this situation in practice, we elect a very limited set of prioritary
processes, which are constantly known by each process.  They are periodically
used to 'normalize' the views (and also for bootstrapping)."

:class:`PriorityProcessSet` implements that practical safeguard: a small
fixed set of process ids that (a) seeds the view of a bootstrapping process
and (b) is periodically re-injected into views so that no process can drift
into an isolated membership island.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

from ..core.ids import ProcessId


class PriorityProcessSet:
    """A fixed set of well-known processes for bootstrap and normalization."""

    def __init__(self, pids: Iterable[ProcessId]) -> None:
        self._pids: Tuple[ProcessId, ...] = tuple(dict.fromkeys(pids))
        if not self._pids:
            raise ValueError("need at least one prioritary process")

    @property
    def pids(self) -> Tuple[ProcessId, ...]:
        return self._pids

    def bootstrap_contact(self, rng: Optional[random.Random] = None) -> ProcessId:
        """A contact for a joining process (Sec. 3.4 requires knowing one
        member; the prioritary set is the well-known entry point)."""
        rng = rng if rng is not None else random.Random()
        return rng.choice(list(self._pids))

    def normalize(self, membership, max_injected: Optional[int] = None) -> int:
        """Re-inject prioritary processes into a membership's view.

        ``membership`` is anything with ``owner`` and ``add`` (a
        :class:`~repro.membership.layer.PartialViewMembership` or a raw
        :class:`~repro.core.view.PartialView`).  Returns how many entries
        were actually added.  Adding may evict random entries (the view stays
        bounded), so normalization trades a little view randomness for a
        guaranteed escape edge out of any would-be partition.
        """
        owner = getattr(membership, "owner", None)
        added = 0
        budget = max_injected if max_injected is not None else len(self._pids)
        for pid in self._pids:
            if budget == 0:
                break
            if pid == owner:
                continue
            if membership.add(pid):
                added += 1
                budget -= 1
        return added

    def normalize_all(self, memberships: Iterable, period_hint: int = 0) -> int:
        """Normalize a collection of memberships; returns total additions."""
        return sum(self.normalize(m) for m in memberships)

    def __contains__(self, pid: object) -> bool:
        return pid in self._pids

    def __len__(self) -> int:
        return len(self._pids)

    def __iter__(self):
        return iter(self._pids)


def periodic_normalizer(
    priority: PriorityProcessSet,
    nodes: List,
    period: int,
):
    """A round hook normalizing every node's view each ``period`` rounds.

    Usage::

        sim.add_round_hook(periodic_normalizer(priority, nodes, period=10))
    """
    if period < 1:
        raise ValueError("period must be >= 1")

    def hook(round_number: int, sim) -> None:
        if round_number % period != 0:
            return
        for node in nodes:
            if sim.alive(node.pid):
                priority.normalize(node.membership)

    return hook
