"""The membership layer (Sec. 6.2).

"Our membership approach is nevertheless not inherently coupled with our
lpbcast algorithm ... It could thus be encapsulated as a membership layer, on
top of which many gossip-based algorithms, like pbcast, could be deployed.
It would act by adding membership information to gossip messages, and would
provide quasi-independent uniformly distributed views."

:class:`PartialViewMembership` is that layer: it owns the bounded ``view``
and the ``subs``/``unSubs`` buffers, implements Phases I and II of
Figure 1(a) on incoming membership information, and produces the membership
payload for outgoing gossips.  :class:`repro.core.node.LpbcastNode` and
:class:`repro.pbcast.node.PbcastNode` (in partial-view mode) both delegate to
it — the code-level expression of the paper's claim that event dissemination
and membership are separable.

:class:`TotalMembership` is the classical alternative — every process knows
every other process — used by the original pbcast baseline of Fig. 7(a).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Protocol, Tuple

from ..core.buffers import RandomDropBuffer
from ..core.events import Unsubscription
from ..core.ids import ProcessId
from ..core.subscription import UnsubscriptionBuffer
from ..core.view import PartialView, WeightedPartialView


class MembershipProvider(Protocol):
    """What a gossip protocol needs from its membership."""

    def gossip_targets(self, fanout: int) -> List[ProcessId]:
        """Uniformly random gossip destinations."""
        ...

    def apply_membership(
        self,
        subs: Tuple[ProcessId, ...],
        unsubs: Tuple[Unsubscription, ...],
        now: float,
    ) -> None:
        """Merge membership information piggybacked on an incoming gossip."""
        ...

    def membership_payload(
        self, now: float, advertise_self: bool = True
    ) -> Tuple[Tuple[ProcessId, ...], Tuple[Unsubscription, ...]]:
        """Membership information to piggyback on an outgoing gossip."""
        ...

    def known_processes(self) -> Tuple[ProcessId, ...]:
        ...


class PartialViewMembership:
    """lpbcast's randomized partial-view membership as a reusable layer."""

    def __init__(
        self,
        owner: ProcessId,
        view_max: int,
        subs_max: int,
        unsubs_max: int,
        unsub_ttl: float,
        rng: Optional[random.Random] = None,
        weighted: bool = False,
        initial_view: Iterable[ProcessId] = (),
    ) -> None:
        self.owner = owner
        self.unsub_ttl = unsub_ttl
        self.weighted = weighted
        rng = rng if rng is not None else random.Random()
        view_cls = WeightedPartialView if weighted else PartialView
        self.view = view_cls(owner, view_max, rng)
        for pid in initial_view:
            self.view.add(pid)
        self.view.truncate()
        self.subs: RandomDropBuffer[ProcessId] = RandomDropBuffer(subs_max, rng)
        self.unsubs = UnsubscriptionBuffer(unsubs_max, rng)
        self.unsubscribed = False
        self.unsubs_applied = 0
        self.view_evictions = 0

    # -- incoming (Figure 1(a), Phases I and II) ----------------------------
    def apply_membership(
        self,
        subs: Tuple[ProcessId, ...],
        unsubs: Tuple[Unsubscription, ...],
        now: float,
    ) -> None:
        self._phase1_unsubscriptions(unsubs, now)
        self._phase2_subscriptions(subs)

    def _phase1_unsubscriptions(
        self, unsubs: Tuple[Unsubscription, ...], now: float
    ) -> None:
        if not unsubs:
            # Nothing arrived and the buffer is already within its bound —
            # an empty truncate draws no randomness, so skipping it keeps
            # runs bit-identical while sparing the call per reception.
            return
        view = self.view
        buffered = self.unsubs
        ttl = self.unsub_ttl
        for unsub in unsubs:
            if unsub.is_obsolete(now, ttl):
                continue
            if view.remove(unsub.pid):
                self.unsubs_applied += 1
            buffered.add(unsub)
        buffered.truncate()

    def _phase2_subscriptions(self, subs: Tuple[ProcessId, ...]) -> None:
        if not subs:
            return  # view/subs already within bounds: no adds, no draws
        weighted = self.weighted and isinstance(self.view, WeightedPartialView)
        view = self.view
        unsubs = self.unsubs
        pending = self.subs
        owner = self.owner
        for new_sub in subs:
            if new_sub == owner:
                continue
            # Death-certificate check (implementation note): while a process's
            # unsubscription is buffered locally, stale subscriptions for it
            # recirculating through other processes' ``subs`` buffers must not
            # re-add it, or the "gradual removal ... from local views"
            # (Sec. 3.2) never converges.  The certificate expires with the
            # unsubscription's timestamp (Sec. 3.4), after which a genuine
            # re-subscription is accepted again.
            if new_sub in unsubs:
                continue
            if new_sub in view:
                if weighted:
                    view.note_awareness(new_sub)
                continue
            if view.add(new_sub):
                pending.add(new_sub)
        evicted = view.truncate()
        if evicted:
            self.view_evictions += len(evicted)
            pending.add_all(evicted)
        pending.truncate()

    # -- outgoing ------------------------------------------------------------
    def membership_payload(
        self, now: float, advertise_self: bool = True
    ) -> Tuple[Tuple[ProcessId, ...], Tuple[Unsubscription, ...]]:
        subs_payload = list(self.subs)
        if self.weighted and isinstance(self.view, WeightedPartialView):
            # Sec. 6.1: "when constructing subs, a process preferably adds
            # entries from its view with a small weight."
            room = max(0, self.subs.max_size - len(subs_payload))
            for pid in self.view.select_for_subs(room):
                if pid not in self.subs:
                    subs_payload.append(pid)
        if advertise_self and not self.unsubscribed:
            subs_payload.append(self.owner)
        return tuple(dict.fromkeys(subs_payload)), self.unsubs.snapshot()

    # -- maintenance -----------------------------------------------------------
    def purge(self, now: float) -> None:
        self.unsubs.purge_obsolete(now, self.unsub_ttl)

    def local_unsubscribe(self, now: float, refusal_threshold: int) -> bool:
        """Sec. 3.4 voluntary leave with saturation refusal."""
        if self.unsubscribed:
            return True
        if len(self.unsubs) >= refusal_threshold:
            return False
        self.unsubs.add(Unsubscription(self.owner, now))
        self.unsubscribed = True
        return True

    # -- queries ---------------------------------------------------------------
    def gossip_targets(self, fanout: int) -> List[ProcessId]:
        return self.view.choose_gossip_targets(fanout)

    def known_processes(self) -> Tuple[ProcessId, ...]:
        return self.view.snapshot()

    def add(self, pid: ProcessId) -> bool:
        added = self.view.add(pid)
        if added:
            evicted = self.view.truncate()
            self.subs.add_all(evicted)
            self.subs.truncate()
        return added

    def remove(self, pid: ProcessId) -> bool:
        return self.view.remove(pid)

    def __contains__(self, pid: object) -> bool:
        return pid in self.view

    def __len__(self) -> int:
        return len(self.view)


class TotalMembership:
    """Complete-view membership: every process knows all others.

    This is the assumption lpbcast removes ("they often rely on the
    assumption that every process knows every other process", Sec. 1); kept
    as the baseline for the Fig. 7(a) comparison and for tests that need a
    ground-truth membership.
    """

    def __init__(
        self,
        owner: ProcessId,
        members: Iterable[ProcessId] = (),
        rng: Optional[random.Random] = None,
    ) -> None:
        self.owner = owner
        self._rng = rng if rng is not None else random.Random()
        self._members = {pid for pid in members if pid != owner}

    def gossip_targets(self, fanout: int) -> List[ProcessId]:
        members = list(self._members)
        if fanout >= len(members):
            return members
        return self._rng.sample(members, fanout)

    def apply_membership(self, subs, unsubs, now: float) -> None:
        for pid in subs:
            if pid != self.owner:
                self._members.add(pid)
        for unsub in unsubs:
            self._members.discard(unsub.pid)

    def membership_payload(self, now: float, advertise_self: bool = True):
        # A total view is maintained out-of-band; nothing to piggyback.
        return (), ()

    def purge(self, now: float) -> None:
        """Nothing to expire in a total view."""

    def known_processes(self) -> Tuple[ProcessId, ...]:
        return tuple(self._members)

    def add(self, pid: ProcessId) -> bool:
        if pid == self.owner or pid in self._members:
            return False
        self._members.add(pid)
        return True

    def remove(self, pid: ProcessId) -> bool:
        if pid in self._members:
            self._members.discard(pid)
            return True
        return False

    def __contains__(self, pid: object) -> bool:
        return pid in self._members

    def __len__(self) -> int:
        return len(self._members)
