"""Composable, deterministic fault schedules.

The paper's central claim (Sec. 5.2, Fig. 6) is that lpbcast stays reliable
under message loss, process crashes and membership churn while every buffer
stays bounded.  A :class:`FaultPlan` is the declarative description of one
such hostile episode: a set of fault *windows* (expressed in rounds — the
round engines use them directly, the async runtime maps one round to one
gossip period) that an engine-side
:class:`~repro.faults.injector.FaultInjector` applies deterministically from
a seeded stream, so the same plan + seed replays the same chaos bit-for-bit
on the serial and the sharded engine.

Fault vocabulary
----------------
* :class:`DropFault` — extra i.i.d. message loss on top of the network's ε,
  optionally scoped to a (src, dst) link.
* :class:`DuplicateFault` — a message is delivered twice (the duplicate
  immediately follows the original, exercising duplicate suppression).
* :class:`DelayFault` — a latency spike: the message is held back a fixed
  number of rounds and re-enters with the victim round's carryover
  (reordering it past everything sent in between).
* :class:`PartitionFault` — a scheduled cut between two process groups,
  optionally *asymmetric* (one direction only), healing at a given round.
* :class:`CrashFault` — fail-stop, optionally followed by recovery: the
  recovered process re-enters through the Sec. 3.3/3.4 membership path by
  re-subscribing via a contact.
* :class:`PauseFault` — a slow node: it stops gossiping (no ticks) for a
  window but keeps receiving, simulating a GC or CPU stall.

All round windows are half-open ``[start, stop)`` and compare against the
engine's 1-based round counter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..core.codec import CodecError
from ..core.ids import ProcessId

#: Fabricated process ids injected by :class:`PoisonViewFault` start here —
#: far above any real pid the builders produce, so a poisoned id is
#: recognizable on sight and can never collide with a real process.
POISON_BASE = 1_000_000

#: Forged digest sequence numbers start here (far above any sequence a real
#: publisher reaches in a bounded run), so a forged event id never collides
#: with an id the victim actually published.
FORGE_SEQ_BASE = 1_000_000


class PlanCodecError(CodecError):
    """A serialized fault plan names a fault kind this build does not know
    (or is otherwise structurally unreadable)."""


def _check_window(start: int, stop: int) -> None:
    if start < 1:
        raise ValueError("fault windows start at round 1 or later")
    if stop <= start:
        raise ValueError("fault window must be non-empty (stop > start)")


def _check_rate(rate: float) -> None:
    if not 0.0 < rate <= 1.0:
        raise ValueError("fault rate must be in (0, 1]")


@dataclass(frozen=True)
class DropFault:
    """Extra Bernoulli loss with probability ``rate`` in ``[start, stop)``.

    ``src``/``dst`` of ``None`` match any process; set both to target one
    directed link.
    """

    rate: float
    start: int = 1
    stop: int = 2 ** 31
    src: Optional[ProcessId] = None
    dst: Optional[ProcessId] = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_rate(self.rate)

    def matches(self, src: ProcessId, dst: ProcessId) -> bool:
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))


@dataclass(frozen=True)
class DuplicateFault:
    """Deliver a message twice with probability ``rate`` in ``[start, stop)``."""

    rate: float
    start: int = 1
    stop: int = 2 ** 31

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_rate(self.rate)


@dataclass(frozen=True)
class DelayFault:
    """Hold a message back ``delay`` rounds with probability ``rate``."""

    rate: float
    delay: int = 1
    start: int = 1
    stop: int = 2 ** 31

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_rate(self.rate)
        if self.delay < 1:
            raise ValueError("delay must be at least one round")


@dataclass(frozen=True)
class PartitionFault:
    """Cut traffic between ``side_a`` and ``side_b`` in ``[start, heal)``.

    ``direction`` selects which crossings are cut: ``"both"`` (symmetric),
    ``"a-to-b"`` or ``"b-to-a"`` (asymmetric — one side still hears the
    other, the pathological case for view convergence).  Processes in
    neither side are unaffected.
    """

    side_a: Tuple[ProcessId, ...]
    side_b: Tuple[ProcessId, ...]
    start: int
    heal: int
    direction: str = "both"

    def __post_init__(self) -> None:
        _check_window(self.start, self.heal)
        if self.direction not in ("both", "a-to-b", "b-to-a"):
            raise ValueError("direction must be 'both', 'a-to-b' or 'b-to-a'")
        if set(self.side_a) & set(self.side_b):
            raise ValueError("partition sides must be disjoint")
        if not self.side_a or not self.side_b:
            raise ValueError("both partition sides must be non-empty")

    def blocks(self, src: ProcessId, dst: ProcessId) -> bool:
        """True when a src→dst message is cut while the partition is up."""
        src_a, src_b = src in self._a_set(), src in self._b_set()
        dst_a, dst_b = dst in self._a_set(), dst in self._b_set()
        a_to_b = src_a and dst_b
        b_to_a = src_b and dst_a
        if self.direction == "both":
            return a_to_b or b_to_a
        if self.direction == "a-to-b":
            return a_to_b
        return b_to_a

    # frozensets cached lazily (dataclass is frozen; use object.__setattr__).
    def _a_set(self) -> frozenset:
        cached = self.__dict__.get("_a")
        if cached is None:
            cached = frozenset(self.side_a)
            object.__setattr__(self, "_a", cached)
        return cached

    def _b_set(self) -> frozenset:
        cached = self.__dict__.get("_b")
        if cached is None:
            cached = frozenset(self.side_b)
            object.__setattr__(self, "_b", cached)
        return cached


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop ``pid`` at round ``at``; optionally recover at
    ``recover_at``.

    Recovery models a process restart that kept its buffers (a warm
    restart): the engine removes the fail-stop and the process re-subscribes
    through ``contact`` via the Sec. 3.4 handshake — or through a contact the
    injector draws from the processes alive at recovery time when ``contact``
    is ``None``.
    """

    pid: ProcessId
    at: int
    recover_at: Optional[int] = None
    contact: Optional[ProcessId] = None

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("crash round must be >= 1")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ValueError("recover_at must come after the crash round")
        if self.contact is not None and self.contact == self.pid:
            raise ValueError("a process cannot re-join through itself")


@dataclass(frozen=True)
class PauseFault:
    """``pid`` emits no gossip for rounds ``[at, at + duration)``.

    The node keeps receiving and replying — only its periodic tick is
    suppressed, like a long GC or CPU stall.
    """

    pid: ProcessId
    at: int
    duration: int

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("pause round must be >= 1")
        if self.duration < 1:
            raise ValueError("pause duration must be >= 1 round")


@dataclass(frozen=True)
class EquivocateFault:
    """``pid`` lies: with probability ``rate`` it rewrites the payloads of
    its *own* events differently per destination (``variants`` distinct
    payload versions), in ``[start, stop)``.

    This is the canonical Byzantine broadcast attack — plain lpbcast
    delivers whichever variant arrives first at each process and violates
    *agreement*; the double-echo variant splits the liar's echo weight
    across digests and keeps agreement.
    """

    pid: ProcessId
    rate: float
    start: int = 1
    stop: int = 2 ** 31
    variants: int = 2

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_rate(self.rate)
        if self.variants < 2:
            raise ValueError("equivocation needs at least 2 payload variants")


@dataclass(frozen=True)
class ForgeDigestFault:
    """``pid`` advertises event ids ``victim`` never published: with
    probability ``rate`` an outgoing gossip gains a fabricated
    ``EventId(victim, FORGE_SEQ_BASE + k)`` digest entry in ``[start, stop)``.

    Under ``digest_implies_delivery`` the forged id becomes a ghost
    delivery attributed to the victim — a *validity* violation.
    """

    pid: ProcessId
    victim: ProcessId
    rate: float
    start: int = 1
    stop: int = 2 ** 31

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_rate(self.rate)
        if self.victim == self.pid:
            raise ValueError(
                "forge victim must differ from the forging process"
            )


@dataclass(frozen=True)
class ReplayStaleFault:
    """``pid`` replays its gossips: with probability ``rate`` a copy of an
    outgoing message re-enters the network ``lag`` rounds later, in
    ``[start, stop)``.  Duplicate suppression must absorb the stale copy."""

    pid: ProcessId
    rate: float
    lag: int = 2
    start: int = 1
    stop: int = 2 ** 31

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_rate(self.rate)
        if self.lag < 1:
            raise ValueError("replay lag must be at least one round")


@dataclass(frozen=True)
class PoisonViewFault:
    """``pid`` gossips subscriptions for ``count`` fabricated processes
    (ids ``POISON_BASE + pid*100 + k``) with probability ``rate`` in
    ``[start, stop)``.

    Plain lpbcast has no defense — fabricated pids circulate through
    views and subs indefinitely (the paper's crash-stop model trusts
    subscriptions); a failure-detecting node ages them out since they never
    gossip.  The view-hygiene invariant polices both scopes.
    """

    pid: ProcessId
    rate: float
    count: int = 1
    start: int = 1
    stop: int = 2 ** 31

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_rate(self.rate)
        if not 1 <= self.count <= 100:
            raise ValueError("poison count must be in 1..100")

    @property
    def fabricated(self) -> Tuple[ProcessId, ...]:
        """The fabricated pids this fault is allowed to inject."""
        return tuple(POISON_BASE + self.pid * 100 + k
                     for k in range(self.count))


@dataclass
class FaultPlan:
    """A composable schedule of fault windows.

    Build one fluently::

        plan = (FaultPlan()
                .drop(rate=0.1, start=2, stop=20)
                .partition(side_a, side_b, start=5, heal=12,
                           direction="a-to-b")
                .crash(7, at=4, recover_at=14, contact=3)
                .pause(11, at=6, duration=3))

    and install it with ``sim.use_fault_plan(plan)`` (round engines),
    ``runtime.use_fault_plan(plan)`` (async runtime).  The plan itself is
    pure data — all randomness lives in the engine-side injector.
    """

    drops: List[DropFault] = field(default_factory=list)
    duplicates: List[DuplicateFault] = field(default_factory=list)
    delays: List[DelayFault] = field(default_factory=list)
    partitions: List[PartitionFault] = field(default_factory=list)
    crashes: List[CrashFault] = field(default_factory=list)
    pauses: List[PauseFault] = field(default_factory=list)
    equivocations: List[EquivocateFault] = field(default_factory=list)
    forges: List[ForgeDigestFault] = field(default_factory=list)
    replays: List[ReplayStaleFault] = field(default_factory=list)
    poisons: List[PoisonViewFault] = field(default_factory=list)

    # -- fluent construction -------------------------------------------------
    def drop(self, rate: float, start: int = 1, stop: int = 2 ** 31,
             src: Optional[ProcessId] = None,
             dst: Optional[ProcessId] = None) -> "FaultPlan":
        self.drops.append(DropFault(rate, start, stop, src, dst))
        return self

    def duplicate(self, rate: float, start: int = 1,
                  stop: int = 2 ** 31) -> "FaultPlan":
        self.duplicates.append(DuplicateFault(rate, start, stop))
        return self

    def delay(self, rate: float, delay: int = 1, start: int = 1,
              stop: int = 2 ** 31) -> "FaultPlan":
        self.delays.append(DelayFault(rate, delay, start, stop))
        return self

    def partition(self, side_a: Sequence[ProcessId],
                  side_b: Sequence[ProcessId], start: int, heal: int,
                  direction: str = "both") -> "FaultPlan":
        self.partitions.append(
            PartitionFault(tuple(side_a), tuple(side_b), start, heal,
                           direction)
        )
        return self

    def crash(self, pid: ProcessId, at: int,
              recover_at: Optional[int] = None,
              contact: Optional[ProcessId] = None) -> "FaultPlan":
        if any(c.pid == pid for c in self.crashes):
            raise ValueError(f"process {pid} already has a crash fault")
        self.crashes.append(CrashFault(pid, at, recover_at, contact))
        return self

    def pause(self, pid: ProcessId, at: int, duration: int) -> "FaultPlan":
        self.pauses.append(PauseFault(pid, at, duration))
        return self

    def equivocate(self, pid: ProcessId, rate: float = 1.0, start: int = 1,
                   stop: int = 2 ** 31, variants: int = 2) -> "FaultPlan":
        self.equivocations.append(
            EquivocateFault(pid, rate, start, stop, variants)
        )
        return self

    def forge_digest(self, pid: ProcessId, victim: ProcessId,
                     rate: float = 1.0, start: int = 1,
                     stop: int = 2 ** 31) -> "FaultPlan":
        self.forges.append(ForgeDigestFault(pid, victim, rate, start, stop))
        return self

    def replay_stale(self, pid: ProcessId, rate: float = 1.0, lag: int = 2,
                     start: int = 1, stop: int = 2 ** 31) -> "FaultPlan":
        self.replays.append(ReplayStaleFault(pid, rate, lag, start, stop))
        return self

    def poison_view(self, pid: ProcessId, rate: float = 1.0, count: int = 1,
                    start: int = 1, stop: int = 2 ** 31) -> "FaultPlan":
        self.poisons.append(PoisonViewFault(pid, rate, count, start, stop))
        return self

    # -- queries -------------------------------------------------------------
    def is_empty(self) -> bool:
        return not (self.drops or self.duplicates or self.delays
                    or self.partitions or self.crashes or self.pauses
                    or self.equivocations or self.forges or self.replays
                    or self.poisons)

    def fault_count(self) -> int:
        return (len(self.drops) + len(self.duplicates) + len(self.delays)
                + len(self.partitions) + len(self.crashes) + len(self.pauses)
                + len(self.equivocations) + len(self.forges)
                + len(self.replays) + len(self.poisons))

    def byzantine_pids(self) -> FrozenSet[ProcessId]:
        """Processes given any lying behavior by this plan.  The protocol
        invariants scope *agreement*/*validity* to processes outside this
        set — a liar's own deliveries prove nothing."""
        return frozenset(
            [f.pid for f in self.equivocations]
            + [f.pid for f in self.forges]
            + [f.pid for f in self.replays]
            + [f.pid for f in self.poisons]
        )

    def poisoned_pids(self) -> FrozenSet[ProcessId]:
        """Every fabricated pid this plan may inject into views."""
        out: set = set()
        for fault in self.poisons:
            out.update(fault.fabricated)
        return frozenset(out)

    def describe(self) -> str:
        """One-line human summary (chaos reports embed it)."""
        parts: List[str] = []
        for d in self.drops:
            scope = "" if d.src is None and d.dst is None else \
                f" on {d.src if d.src is not None else '*'}->" \
                f"{d.dst if d.dst is not None else '*'}"
            parts.append(f"drop {d.rate:.0%}{scope} @[{d.start},{_w(d.stop)})")
        for d in self.duplicates:
            parts.append(f"dup {d.rate:.0%} @[{d.start},{_w(d.stop)})")
        for d in self.delays:
            parts.append(f"delay+{d.delay} {d.rate:.0%} "
                         f"@[{d.start},{_w(d.stop)})")
        for p in self.partitions:
            parts.append(f"partition {len(p.side_a)}|{len(p.side_b)} "
                         f"({p.direction}) @[{p.start},{p.heal})")
        for c in self.crashes:
            rec = f"->recover@{c.recover_at}" if c.recover_at else ""
            parts.append(f"crash p{c.pid}@{c.at}{rec}")
        for p in self.pauses:
            parts.append(f"pause p{p.pid}@[{p.at},{p.at + p.duration})")
        for e in self.equivocations:
            parts.append(f"equivocate p{e.pid} {e.rate:.0%}x{e.variants} "
                         f"@[{e.start},{_w(e.stop)})")
        for f in self.forges:
            parts.append(f"forge p{f.pid}->v{f.victim} {f.rate:.0%} "
                         f"@[{f.start},{_w(f.stop)})")
        for r in self.replays:
            parts.append(f"replay p{r.pid}+{r.lag} {r.rate:.0%} "
                         f"@[{r.start},{_w(r.stop)})")
        for p in self.poisons:
            parts.append(f"poison p{p.pid}x{p.count} {p.rate:.0%} "
                         f"@[{p.start},{_w(p.stop)})")
        return "; ".join(parts) if parts else "no faults"

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON form of the plan (the DST repro artifacts embed it).

        Everything is lists/ints/floats/strings; :meth:`from_dict` is the
        exact inverse (re-running every constructor validation), so a plan
        survives a JSON round-trip bit-identically.
        """
        return {
            "drops": [[d.rate, d.start, d.stop, d.src, d.dst]
                      for d in self.drops],
            "duplicates": [[d.rate, d.start, d.stop]
                           for d in self.duplicates],
            "delays": [[d.rate, d.delay, d.start, d.stop]
                       for d in self.delays],
            "partitions": [[list(p.side_a), list(p.side_b), p.start, p.heal,
                            p.direction] for p in self.partitions],
            "crashes": [[c.pid, c.at, c.recover_at, c.contact]
                        for c in self.crashes],
            "pauses": [[p.pid, p.at, p.duration] for p in self.pauses],
            "equivocations": [[e.pid, e.rate, e.start, e.stop, e.variants]
                              for e in self.equivocations],
            "forges": [[f.pid, f.victim, f.rate, f.start, f.stop]
                       for f in self.forges],
            "replays": [[r.pid, r.rate, r.lag, r.start, r.stop]
                        for r in self.replays],
            "poisons": [[p.pid, p.rate, p.count, p.start, p.stop]
                        for p in self.poisons],
        }

    #: Every fault kind :meth:`from_dict` understands; anything else in a
    #: serialized plan is from a newer (or corrupted) build and must be
    #: rejected, not silently dropped — a replayed artifact that loses
    #: faults would "pass" for the wrong reason.
    _KNOWN_KINDS = frozenset((
        "drops", "duplicates", "delays", "partitions", "crashes", "pauses",
        "equivocations", "forges", "replays", "poisons",
    ))

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_dict` (validating every
        window again, so hand-edited artifacts fail loudly).  Unknown fault
        kinds raise :class:`PlanCodecError` naming every offending kind;
        malformed entries raise :class:`PlanCodecError` naming the kind and
        the entry index, so a hand-edited Byzantine artifact points at the
        exact list element that broke."""
        if not isinstance(data, dict):
            raise PlanCodecError(f"fault plan must be a dict, got "
                                 f"{type(data).__name__}")
        unknown = set(data) - cls._KNOWN_KINDS
        if unknown:
            raise PlanCodecError(
                f"unknown fault kind(s) in serialized plan: "
                f"{', '.join(sorted(unknown))}"
            )
        plan = cls()
        decoders = {
            "drops": lambda rate, start, stop, src, dst: plan.drop(
                rate, start=start, stop=stop, src=src, dst=dst),
            "duplicates": lambda rate, start, stop: plan.duplicate(
                rate, start=start, stop=stop),
            "delays": lambda rate, delay, start, stop: plan.delay(
                rate, delay=delay, start=start, stop=stop),
            "partitions": lambda side_a, side_b, start, heal, direction:
                plan.partition(side_a, side_b, start=start, heal=heal,
                               direction=direction),
            "crashes": lambda pid, at, recover_at, contact: plan.crash(
                pid, at=at, recover_at=recover_at, contact=contact),
            "pauses": lambda pid, at, duration: plan.pause(
                pid, at=at, duration=duration),
            "equivocations": lambda pid, rate, start, stop, variants:
                plan.equivocate(pid, rate=rate, start=start, stop=stop,
                                variants=variants),
            "forges": lambda pid, victim, rate, start, stop:
                plan.forge_digest(pid, victim, rate=rate, start=start,
                                  stop=stop),
            "replays": lambda pid, rate, lag, start, stop: plan.replay_stale(
                pid, rate=rate, lag=lag, start=start, stop=stop),
            "poisons": lambda pid, rate, count, start, stop: plan.poison_view(
                pid, rate=rate, count=count, start=start, stop=stop),
        }
        for kind, decode in decoders.items():
            for index, entry in enumerate(data.get(kind, ())):
                try:
                    decode(*entry)
                except (TypeError, ValueError) as exc:
                    raise PlanCodecError(
                        f"bad {kind!r} entry #{index} in serialized plan: "
                        f"{exc}"
                    ) from exc
        return plan

    # -- randomized composition ----------------------------------------------
    @classmethod
    def random(cls, pids: Sequence[ProcessId], horizon: int,
               rng: random.Random,
               intensity: float = 1.0,
               byzantine_rate: float = 0.0,
               byzantine_nodes: int = 0) -> "FaultPlan":
        """Draw a random composed plan over ``pids`` for a ``horizon``-round
        run — the chaos soak's scenario generator.

        ``intensity`` scales fault probabilities/counts; 1.0 yields a plan
        with moderate loss, one partition-with-heal, one or two
        crash(-with-recovery) events and a pause.  Every draw comes from
        ``rng``, so (pids, horizon, rng seed) fully determine the plan.

        ``byzantine_nodes`` > 0 additionally turns that many processes into
        liars, each drawing one Byzantine behavior (equivocate / forge /
        replay / poison) firing with probability ``byzantine_rate``.  The
        Byzantine draws happen strictly after the crash-stop draws, so plans
        with the knobs off are bit-identical to pre-Byzantine builds.
        """
        if horizon < 8:
            raise ValueError("need a horizon of at least 8 rounds")
        if len(pids) < 4:
            raise ValueError("need at least 4 processes")
        pids = list(pids)
        plan = cls()
        mid = horizon // 2

        # Background extra loss for a window of the run.
        if rng.random() < min(1.0, 0.9 * intensity):
            start = rng.randrange(1, mid)
            stop = rng.randrange(start + 2, horizon + 1)
            plan.drop(rate=min(0.5, rng.uniform(0.02, 0.2) * intensity),
                      start=start, stop=stop)
        # Duplication and delay spikes.
        if rng.random() < min(1.0, 0.6 * intensity):
            plan.duplicate(rate=min(0.5, rng.uniform(0.02, 0.1) * intensity),
                           start=1, stop=horizon + 1)
        if rng.random() < min(1.0, 0.6 * intensity):
            plan.delay(rate=min(0.5, rng.uniform(0.02, 0.1) * intensity),
                       delay=rng.randrange(1, 3), start=1, stop=horizon + 1)
        # One partition with a scheduled heal, sometimes asymmetric.
        if rng.random() < min(1.0, 0.7 * intensity):
            cut_size = max(1, len(pids) // rng.choice((3, 4, 5)))
            side_a = rng.sample(pids, cut_size)
            side_b = [p for p in pids if p not in side_a]
            start = rng.randrange(2, mid + 1)
            heal = rng.randrange(start + 2, horizon)
            plan.partition(side_a, side_b, start=start, heal=heal,
                           direction=rng.choice(("both", "a-to-b", "b-to-a")))
        # Crashes, some with recovery (warm restart + re-subscribe).
        n_crashes = rng.randrange(1, max(2, int(2 * intensity) + 1) + 1)
        victims = rng.sample(pids, min(n_crashes, max(1, len(pids) // 4)))
        for pid in victims:
            at = rng.randrange(2, horizon - 2)
            recover_at = None
            if rng.random() < 0.5 and at + 2 < horizon:
                recover_at = rng.randrange(at + 2, horizon)
            plan.crash(pid, at=at, recover_at=recover_at)
        # A slow node.
        if rng.random() < min(1.0, 0.6 * intensity):
            candidates = [p for p in pids if p not in victims]
            if candidates:
                pid = rng.choice(candidates)
                at = rng.randrange(1, horizon - 2)
                plan.pause(pid, at=at,
                           duration=rng.randrange(1, max(2, horizon // 5) + 1))
        # Byzantine processes (liars) — drawn last, see docstring.
        if byzantine_nodes > 0:
            if not 0.0 < byzantine_rate <= 1.0:
                raise ValueError(
                    "byzantine_rate must be in (0, 1] when byzantine_nodes "
                    "is set"
                )
            honest = [p for p in pids if p not in victims]
            liars = rng.sample(honest, min(byzantine_nodes, len(honest)))
            for pid in liars:
                start = rng.randrange(1, mid + 1)
                stop = rng.randrange(start + 2, horizon + 2)
                kind = rng.choice(("equivocate", "forge", "replay", "poison"))
                if kind == "equivocate":
                    plan.equivocate(pid, rate=byzantine_rate, start=start,
                                    stop=stop)
                elif kind == "forge":
                    targets = [p for p in pids if p != pid]
                    plan.forge_digest(pid, victim=rng.choice(targets),
                                      rate=byzantine_rate, start=start,
                                      stop=stop)
                elif kind == "replay":
                    plan.replay_stale(pid, rate=byzantine_rate,
                                      lag=rng.randrange(1, 4), start=start,
                                      stop=stop)
                else:
                    plan.poison_view(pid, rate=byzantine_rate,
                                     count=rng.randrange(1, 4), start=start,
                                     stop=stop)
        return plan


def _w(stop: int) -> str:
    return "inf" if stop >= 2 ** 31 else str(stop)
