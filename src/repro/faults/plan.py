"""Composable, deterministic fault schedules.

The paper's central claim (Sec. 5.2, Fig. 6) is that lpbcast stays reliable
under message loss, process crashes and membership churn while every buffer
stays bounded.  A :class:`FaultPlan` is the declarative description of one
such hostile episode: a set of fault *windows* (expressed in rounds — the
round engines use them directly, the async runtime maps one round to one
gossip period) that an engine-side
:class:`~repro.faults.injector.FaultInjector` applies deterministically from
a seeded stream, so the same plan + seed replays the same chaos bit-for-bit
on the serial and the sharded engine.

Fault vocabulary
----------------
* :class:`DropFault` — extra i.i.d. message loss on top of the network's ε,
  optionally scoped to a (src, dst) link.
* :class:`DuplicateFault` — a message is delivered twice (the duplicate
  immediately follows the original, exercising duplicate suppression).
* :class:`DelayFault` — a latency spike: the message is held back a fixed
  number of rounds and re-enters with the victim round's carryover
  (reordering it past everything sent in between).
* :class:`PartitionFault` — a scheduled cut between two process groups,
  optionally *asymmetric* (one direction only), healing at a given round.
* :class:`CrashFault` — fail-stop, optionally followed by recovery: the
  recovered process re-enters through the Sec. 3.3/3.4 membership path by
  re-subscribing via a contact.
* :class:`PauseFault` — a slow node: it stops gossiping (no ticks) for a
  window but keeps receiving, simulating a GC or CPU stall.

All round windows are half-open ``[start, stop)`` and compare against the
engine's 1-based round counter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.ids import ProcessId


def _check_window(start: int, stop: int) -> None:
    if start < 1:
        raise ValueError("fault windows start at round 1 or later")
    if stop <= start:
        raise ValueError("fault window must be non-empty (stop > start)")


def _check_rate(rate: float) -> None:
    if not 0.0 < rate <= 1.0:
        raise ValueError("fault rate must be in (0, 1]")


@dataclass(frozen=True)
class DropFault:
    """Extra Bernoulli loss with probability ``rate`` in ``[start, stop)``.

    ``src``/``dst`` of ``None`` match any process; set both to target one
    directed link.
    """

    rate: float
    start: int = 1
    stop: int = 2 ** 31
    src: Optional[ProcessId] = None
    dst: Optional[ProcessId] = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_rate(self.rate)

    def matches(self, src: ProcessId, dst: ProcessId) -> bool:
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))


@dataclass(frozen=True)
class DuplicateFault:
    """Deliver a message twice with probability ``rate`` in ``[start, stop)``."""

    rate: float
    start: int = 1
    stop: int = 2 ** 31

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_rate(self.rate)


@dataclass(frozen=True)
class DelayFault:
    """Hold a message back ``delay`` rounds with probability ``rate``."""

    rate: float
    delay: int = 1
    start: int = 1
    stop: int = 2 ** 31

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_rate(self.rate)
        if self.delay < 1:
            raise ValueError("delay must be at least one round")


@dataclass(frozen=True)
class PartitionFault:
    """Cut traffic between ``side_a`` and ``side_b`` in ``[start, heal)``.

    ``direction`` selects which crossings are cut: ``"both"`` (symmetric),
    ``"a-to-b"`` or ``"b-to-a"`` (asymmetric — one side still hears the
    other, the pathological case for view convergence).  Processes in
    neither side are unaffected.
    """

    side_a: Tuple[ProcessId, ...]
    side_b: Tuple[ProcessId, ...]
    start: int
    heal: int
    direction: str = "both"

    def __post_init__(self) -> None:
        _check_window(self.start, self.heal)
        if self.direction not in ("both", "a-to-b", "b-to-a"):
            raise ValueError("direction must be 'both', 'a-to-b' or 'b-to-a'")
        if set(self.side_a) & set(self.side_b):
            raise ValueError("partition sides must be disjoint")
        if not self.side_a or not self.side_b:
            raise ValueError("both partition sides must be non-empty")

    def blocks(self, src: ProcessId, dst: ProcessId) -> bool:
        """True when a src→dst message is cut while the partition is up."""
        src_a, src_b = src in self._a_set(), src in self._b_set()
        dst_a, dst_b = dst in self._a_set(), dst in self._b_set()
        a_to_b = src_a and dst_b
        b_to_a = src_b and dst_a
        if self.direction == "both":
            return a_to_b or b_to_a
        if self.direction == "a-to-b":
            return a_to_b
        return b_to_a

    # frozensets cached lazily (dataclass is frozen; use object.__setattr__).
    def _a_set(self) -> frozenset:
        cached = self.__dict__.get("_a")
        if cached is None:
            cached = frozenset(self.side_a)
            object.__setattr__(self, "_a", cached)
        return cached

    def _b_set(self) -> frozenset:
        cached = self.__dict__.get("_b")
        if cached is None:
            cached = frozenset(self.side_b)
            object.__setattr__(self, "_b", cached)
        return cached


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop ``pid`` at round ``at``; optionally recover at
    ``recover_at``.

    Recovery models a process restart that kept its buffers (a warm
    restart): the engine removes the fail-stop and the process re-subscribes
    through ``contact`` via the Sec. 3.4 handshake — or through a contact the
    injector draws from the processes alive at recovery time when ``contact``
    is ``None``.
    """

    pid: ProcessId
    at: int
    recover_at: Optional[int] = None
    contact: Optional[ProcessId] = None

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("crash round must be >= 1")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ValueError("recover_at must come after the crash round")
        if self.contact is not None and self.contact == self.pid:
            raise ValueError("a process cannot re-join through itself")


@dataclass(frozen=True)
class PauseFault:
    """``pid`` emits no gossip for rounds ``[at, at + duration)``.

    The node keeps receiving and replying — only its periodic tick is
    suppressed, like a long GC or CPU stall.
    """

    pid: ProcessId
    at: int
    duration: int

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("pause round must be >= 1")
        if self.duration < 1:
            raise ValueError("pause duration must be >= 1 round")


@dataclass
class FaultPlan:
    """A composable schedule of fault windows.

    Build one fluently::

        plan = (FaultPlan()
                .drop(rate=0.1, start=2, stop=20)
                .partition(side_a, side_b, start=5, heal=12,
                           direction="a-to-b")
                .crash(7, at=4, recover_at=14, contact=3)
                .pause(11, at=6, duration=3))

    and install it with ``sim.use_fault_plan(plan)`` (round engines),
    ``runtime.use_fault_plan(plan)`` (async runtime).  The plan itself is
    pure data — all randomness lives in the engine-side injector.
    """

    drops: List[DropFault] = field(default_factory=list)
    duplicates: List[DuplicateFault] = field(default_factory=list)
    delays: List[DelayFault] = field(default_factory=list)
    partitions: List[PartitionFault] = field(default_factory=list)
    crashes: List[CrashFault] = field(default_factory=list)
    pauses: List[PauseFault] = field(default_factory=list)

    # -- fluent construction -------------------------------------------------
    def drop(self, rate: float, start: int = 1, stop: int = 2 ** 31,
             src: Optional[ProcessId] = None,
             dst: Optional[ProcessId] = None) -> "FaultPlan":
        self.drops.append(DropFault(rate, start, stop, src, dst))
        return self

    def duplicate(self, rate: float, start: int = 1,
                  stop: int = 2 ** 31) -> "FaultPlan":
        self.duplicates.append(DuplicateFault(rate, start, stop))
        return self

    def delay(self, rate: float, delay: int = 1, start: int = 1,
              stop: int = 2 ** 31) -> "FaultPlan":
        self.delays.append(DelayFault(rate, delay, start, stop))
        return self

    def partition(self, side_a: Sequence[ProcessId],
                  side_b: Sequence[ProcessId], start: int, heal: int,
                  direction: str = "both") -> "FaultPlan":
        self.partitions.append(
            PartitionFault(tuple(side_a), tuple(side_b), start, heal,
                           direction)
        )
        return self

    def crash(self, pid: ProcessId, at: int,
              recover_at: Optional[int] = None,
              contact: Optional[ProcessId] = None) -> "FaultPlan":
        if any(c.pid == pid for c in self.crashes):
            raise ValueError(f"process {pid} already has a crash fault")
        self.crashes.append(CrashFault(pid, at, recover_at, contact))
        return self

    def pause(self, pid: ProcessId, at: int, duration: int) -> "FaultPlan":
        self.pauses.append(PauseFault(pid, at, duration))
        return self

    # -- queries -------------------------------------------------------------
    def is_empty(self) -> bool:
        return not (self.drops or self.duplicates or self.delays
                    or self.partitions or self.crashes or self.pauses)

    def fault_count(self) -> int:
        return (len(self.drops) + len(self.duplicates) + len(self.delays)
                + len(self.partitions) + len(self.crashes) + len(self.pauses))

    def describe(self) -> str:
        """One-line human summary (chaos reports embed it)."""
        parts: List[str] = []
        for d in self.drops:
            scope = "" if d.src is None and d.dst is None else \
                f" on {d.src if d.src is not None else '*'}->" \
                f"{d.dst if d.dst is not None else '*'}"
            parts.append(f"drop {d.rate:.0%}{scope} @[{d.start},{_w(d.stop)})")
        for d in self.duplicates:
            parts.append(f"dup {d.rate:.0%} @[{d.start},{_w(d.stop)})")
        for d in self.delays:
            parts.append(f"delay+{d.delay} {d.rate:.0%} "
                         f"@[{d.start},{_w(d.stop)})")
        for p in self.partitions:
            parts.append(f"partition {len(p.side_a)}|{len(p.side_b)} "
                         f"({p.direction}) @[{p.start},{p.heal})")
        for c in self.crashes:
            rec = f"->recover@{c.recover_at}" if c.recover_at else ""
            parts.append(f"crash p{c.pid}@{c.at}{rec}")
        for p in self.pauses:
            parts.append(f"pause p{p.pid}@[{p.at},{p.at + p.duration})")
        return "; ".join(parts) if parts else "no faults"

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON form of the plan (the DST repro artifacts embed it).

        Everything is lists/ints/floats/strings; :meth:`from_dict` is the
        exact inverse (re-running every constructor validation), so a plan
        survives a JSON round-trip bit-identically.
        """
        return {
            "drops": [[d.rate, d.start, d.stop, d.src, d.dst]
                      for d in self.drops],
            "duplicates": [[d.rate, d.start, d.stop]
                           for d in self.duplicates],
            "delays": [[d.rate, d.delay, d.start, d.stop]
                       for d in self.delays],
            "partitions": [[list(p.side_a), list(p.side_b), p.start, p.heal,
                            p.direction] for p in self.partitions],
            "crashes": [[c.pid, c.at, c.recover_at, c.contact]
                        for c in self.crashes],
            "pauses": [[p.pid, p.at, p.duration] for p in self.pauses],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_dict` (validating every
        window again, so hand-edited artifacts fail loudly)."""
        plan = cls()
        for rate, start, stop, src, dst in data.get("drops", ()):
            plan.drop(rate, start=start, stop=stop, src=src, dst=dst)
        for rate, start, stop in data.get("duplicates", ()):
            plan.duplicate(rate, start=start, stop=stop)
        for rate, delay, start, stop in data.get("delays", ()):
            plan.delay(rate, delay=delay, start=start, stop=stop)
        for side_a, side_b, start, heal, direction in data.get(
                "partitions", ()):
            plan.partition(side_a, side_b, start=start, heal=heal,
                           direction=direction)
        for pid, at, recover_at, contact in data.get("crashes", ()):
            plan.crash(pid, at=at, recover_at=recover_at, contact=contact)
        for pid, at, duration in data.get("pauses", ()):
            plan.pause(pid, at=at, duration=duration)
        return plan

    # -- randomized composition ----------------------------------------------
    @classmethod
    def random(cls, pids: Sequence[ProcessId], horizon: int,
               rng: random.Random,
               intensity: float = 1.0) -> "FaultPlan":
        """Draw a random composed plan over ``pids`` for a ``horizon``-round
        run — the chaos soak's scenario generator.

        ``intensity`` scales fault probabilities/counts; 1.0 yields a plan
        with moderate loss, one partition-with-heal, one or two
        crash(-with-recovery) events and a pause.  Every draw comes from
        ``rng``, so (pids, horizon, rng seed) fully determine the plan.
        """
        if horizon < 8:
            raise ValueError("need a horizon of at least 8 rounds")
        if len(pids) < 4:
            raise ValueError("need at least 4 processes")
        pids = list(pids)
        plan = cls()
        mid = horizon // 2

        # Background extra loss for a window of the run.
        if rng.random() < min(1.0, 0.9 * intensity):
            start = rng.randrange(1, mid)
            stop = rng.randrange(start + 2, horizon + 1)
            plan.drop(rate=min(0.5, rng.uniform(0.02, 0.2) * intensity),
                      start=start, stop=stop)
        # Duplication and delay spikes.
        if rng.random() < min(1.0, 0.6 * intensity):
            plan.duplicate(rate=min(0.5, rng.uniform(0.02, 0.1) * intensity),
                           start=1, stop=horizon + 1)
        if rng.random() < min(1.0, 0.6 * intensity):
            plan.delay(rate=min(0.5, rng.uniform(0.02, 0.1) * intensity),
                       delay=rng.randrange(1, 3), start=1, stop=horizon + 1)
        # One partition with a scheduled heal, sometimes asymmetric.
        if rng.random() < min(1.0, 0.7 * intensity):
            cut_size = max(1, len(pids) // rng.choice((3, 4, 5)))
            side_a = rng.sample(pids, cut_size)
            side_b = [p for p in pids if p not in side_a]
            start = rng.randrange(2, mid + 1)
            heal = rng.randrange(start + 2, horizon)
            plan.partition(side_a, side_b, start=start, heal=heal,
                           direction=rng.choice(("both", "a-to-b", "b-to-a")))
        # Crashes, some with recovery (warm restart + re-subscribe).
        n_crashes = rng.randrange(1, max(2, int(2 * intensity) + 1) + 1)
        victims = rng.sample(pids, min(n_crashes, max(1, len(pids) // 4)))
        for pid in victims:
            at = rng.randrange(2, horizon - 2)
            recover_at = None
            if rng.random() < 0.5 and at + 2 < horizon:
                recover_at = rng.randrange(at + 2, horizon)
            plan.crash(pid, at=at, recover_at=recover_at)
        # A slow node.
        if rng.random() < min(1.0, 0.6 * intensity):
            candidates = [p for p in pids if p not in victims]
            if candidates:
                pid = rng.choice(candidates)
                at = rng.randrange(1, horizon - 2)
                plan.pause(pid, at=at,
                           duration=rng.randrange(1, max(2, horizon // 5) + 1))
        return plan


def _w(stop: int) -> str:
    return "inf" if stop >= 2 ** 31 else str(stop)
