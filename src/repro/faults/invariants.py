"""Live monitoring of the paper's safety properties.

The reliability numbers of Sec. 5.2 are only meaningful if the protocol's
*safety* side holds while they are measured.  :class:`InvariantMonitor`
attaches to a running round simulation and checks, as the run progresses:

``no-duplicate-delivery``
    No process LPB-DELIVERs the same event id twice while that id is
    provably still in its bounded ``eventIds`` buffer.  The buffer is FIFO
    with capacity ``|eventIds|_m``, so a second delivery fewer than
    ``|eventIds|_m`` deliveries after the first cannot be explained by
    eviction — it is a duplicate-suppression bug.  Re-deliveries *after* the
    id may have been evicted are legitimate (bounded memory is the paper's
    explicit trade-off) and reset the baseline instead.
``buffer-bounds``
    ``|view| ≤ l``, ``|subs| ≤ |subs|_m``, ``|unSubs| ≤ |unSubs|_m``,
    ``|events| ≤ |events|_m`` and ``|eventIds| ≤ |eventIds|_m`` after every
    round.
``view-excludes-owner``
    A process never holds itself in its own view (Sec. 3.2's views are over
    *other* processes).
``unsub-expiry``
    No buffered unsubscription older than the unsubscription TTL survives a
    node's purge (Sec. 3.4: timestamps "limit the subsistence of obsolete
    unsubscriptions").
``crashed-silence``
    A fail-stopped process emits no gossip and delivers nothing (Sec. 4.1's
    crash model).

Under a Byzantine :class:`~repro.faults.plan.FaultPlan` three *protocol*
invariants join the sweep.  They are scoped to **correct** processes — pids
outside ``plan.byzantine_pids()`` — because a liar's own deliveries prove
nothing:

``agreement``
    No two correct processes deliver *different* payloads for the same
    event id.  Plain lpbcast violates this under equivocation (it trusts
    the first payload it hears); the double-echo variant
    (``LpbcastConfig(double_echo=True)``) restores it.  Synthetic
    digest-shortcut deliveries (payload ``None``) carry no payload claim
    and are exempt.
``validity``
    A correct process only delivers payloads its (correct, watched) origin
    actually published, and never delivers an event id such an origin never
    issued — forged digests must not materialize ghost events.
``view-hygiene``
    A fabricated pid (``>= POISON_BASE``) outside the plan's
    ``poisoned_pids()`` scope never appears in any correct view or subs
    buffer (that would be an injector bug, flagged immediately).  Planned
    ghosts are tolerated on plain lpbcast nodes (the paper's crash-stop
    model trusts subscriptions) but a failure-detecting node
    (``FdLpbcastNode``, anything with a ``detector``) must age them out:
    a ghost continuously resident for ``poison_grace`` rounds after its
    fault window closed is a violation.

Under causal-delivery mode (``LpbcastConfig(causal_delivery=True)``) two
ordering invariants join, scoped like the protocol invariants to correct
processes:

``causality``
    No correct process LPB-DELIVERs a notification before every dependency
    named in its vector-interval metadata (``Notification.deps``) has been
    delivered at that process.  A correct
    :class:`~repro.core.delivery.CausalDeliveryGate` can never violate this
    — it evicts rather than releases on overflow — so any firing is an
    ordering bug, exactly what the DST fuzzer's planted dropped-dependency
    mutation produces.
``holdback-bound``
    The causal hold-back queue never exceeds its configured bound
    (``causal_holdback_max``) after any round.

Violations carry the run's root seed and round, so every report is
replayable: rebuild the same scenario with the same seed and the violation
reappears at the same round.

Engine notes: delivery-level checks (``no-duplicate-delivery``,
crashed-delivery) ride the delivery-listener path and work on every engine,
including the sharded one.  Node-state checks read node buffers each round;
on the sharded engine those reads see the last synced replica, so they are
only exercised when the caller refreshes replicas (serial runs check every
round for free).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.ids import EventId, ProcessId
from .plan import POISON_BASE


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    invariant: str
    pid: Optional[ProcessId]
    round: int
    seed: Optional[int]
    detail: str

    def replay_hint(self) -> str:
        seed = "?" if self.seed is None else self.seed
        return f"replay with seed={seed}, violated at round {self.round}"

    def __str__(self) -> str:
        who = "" if self.pid is None else f" process {self.pid}"
        return (f"[{self.invariant}]{who} at round {self.round}: "
                f"{self.detail} ({self.replay_hint()})")


class InvariantViolation(AssertionError):
    """Raised in ``mode="raise"`` the moment an invariant breaks."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass
class InvariantMonitor:
    """Attachable safety-property checker for round simulations.

    >>> sim, nodes, log = ...  # any wired system
    >>> monitor = InvariantMonitor(mode="collect").attach(sim)
    >>> sim.run(200)
    >>> assert not monitor.violations, monitor.report()

    ``mode="raise"`` (default) raises :class:`InvariantViolation` at the
    first breach; ``mode="collect"`` accumulates into ``violations``.
    """

    mode: str = "raise"
    seed: Optional[int] = None
    violations: List[Violation] = field(default_factory=list)
    checks_run: int = 0
    #: Rounds a planned ghost pid may linger on a failure-detecting node
    #: after its poison window closes (covers the detector's suspect
    #: timeout plus gossip-propagation slack) before view-hygiene fires.
    poison_grace: int = 10

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "collect"):
            raise ValueError("mode must be 'raise' or 'collect'")
        if self.poison_grace < 1:
            raise ValueError("poison_grace must be >= 1")
        self._sim = None
        # (pid, event id) -> per-pid delivery counter at last delivery.
        self._last_seen: Dict[Tuple[ProcessId, EventId], int] = {}
        self._delivery_count: Dict[ProcessId, int] = {}
        self._id_window: Dict[ProcessId, int] = {}
        # pid -> gossips_sent observed when the crash was first seen.
        self._gossip_baseline: Dict[ProcessId, int] = {}
        # -- protocol-invariant state (agreement / validity / hygiene) -----
        self._watched: set = set()
        # event id -> (first correct deliverer, its non-None payload).
        self._payload_of: Dict[EventId, Tuple[ProcessId, object]] = {}
        # event id -> payload its origin actually published (recorded from
        # the publisher's own delivery, which always precedes any remote
        # delivery of the same event).
        self._published: Dict[EventId, object] = {}
        # (pid, ghost) -> consecutive post-window rounds the ghost was seen
        # resident on a failure-detecting node ("" once flagged).
        self._ghost_streak: Dict[Tuple[ProcessId, ProcessId], object] = {}
        self._poison_scope: Optional[tuple] = None
        # -- causal-ordering state ----------------------------------------
        # pids running causal-delivery mode (recorded at watch time).
        self._causal_pids: set = set()
        # (pid, origin) -> highest seq this pid has delivered from origin.
        self._delivered_frontier: Dict[Tuple[ProcessId, ProcessId], int] = {}

    # -- wiring --------------------------------------------------------------
    def attach(self, sim) -> "InvariantMonitor":
        """Register on every current node and on the round loop of ``sim``
        (a :class:`~repro.sim.round_runner.RoundSimulation` or subclass).

        Engines without a round loop (``AsyncGossipRuntime`` exposes no
        ``add_observer``) get the delivery-path checks only — duplicate
        delivery and crashed-silence still fire on every LPB-DELIVER, while
        the per-round node-state sweep needs a caller-driven
        :meth:`check_now`."""
        self._sim = sim
        if self.seed is None:
            seeds = getattr(sim, "seeds", None)
            self.seed = getattr(seeds, "root_seed", None)
        for pid, node in sim.nodes.items():
            self.watch_node(pid, node)
        add_observer = getattr(sim, "add_observer", None)
        if add_observer is not None:
            add_observer(self._on_round)
        return self

    def check_now(self, round_no: Optional[int] = None) -> None:
        """Run the per-round node-state sweep on demand — the entry point
        for engines that drive no round observers (the async runtime, where
        the caller maps time to a round number)."""
        if self._sim is None:
            raise RuntimeError("attach() the monitor before check_now()")
        if round_no is None:
            round_no = int(getattr(self._sim, "round",
                                   getattr(self._sim, "now", 0)))
        self._on_round(round_no, self._sim)

    def watch_node(self, pid: ProcessId, node) -> None:
        """Hook one node's delivery stream (call for nodes added later)."""
        if hasattr(node, "add_delivery_listener"):
            node.add_delivery_listener(self._on_delivery)
        self._watched.add(pid)
        cfg = getattr(node, "config", None)
        window = getattr(cfg, "event_ids_max", None)
        if window is not None:
            self._id_window[pid] = window
        if getattr(cfg, "causal_delivery", False):
            self._causal_pids.add(pid)

    # -- plan scope ----------------------------------------------------------
    def _plan(self):
        injector = getattr(self._sim, "_fault_injector", None)
        return None if injector is None else injector.plan

    def _byzantine(self) -> frozenset:
        plan = self._plan()
        return frozenset() if plan is None else plan.byzantine_pids()

    def _poison_windows(self) -> Tuple[frozenset, Dict[ProcessId, int]]:
        """(planned ghost pids, ghost -> latest fault-window stop), cached —
        plans are immutable once installed."""
        if self._poison_scope is None:
            plan = self._plan()
            planned: set = set()
            stop_of: Dict[ProcessId, int] = {}
            if plan is not None:
                for fault in plan.poisons:
                    for ghost in fault.fabricated:
                        planned.add(ghost)
                        stop_of[ghost] = max(stop_of.get(ghost, 0),
                                             fault.stop)
            self._poison_scope = (frozenset(planned), stop_of)
        return self._poison_scope

    # -- delivery-path checks ------------------------------------------------
    def _on_delivery(self, pid: ProcessId, notification, now: float) -> None:
        count = self._delivery_count.get(pid, 0) + 1
        self._delivery_count[pid] = count
        sim = self._sim

        if (sim is not None and pid in sim.crashed
                and getattr(sim, "on_node_error", "raise") != "crash"):
            # Round-start fail-stops must silence a process completely; with
            # on_node_error="crash" a node can legitimately deliver earlier
            # in the round it error-crashes, so the check is skipped there.
            self._flag("crashed-silence", pid,
                       f"crashed process delivered {notification!r}")

        key = (pid, notification.event_id)
        first = self._last_seen.get(key)
        window = self._id_window.get(pid)
        if first is not None and window is not None:
            if count - first < window:
                self._flag(
                    "no-duplicate-delivery", pid,
                    f"event {notification.event_id} delivered again after "
                    f"{count - first} deliveries — inside the |eventIds|m="
                    f"{window} window, so it cannot have been evicted",
                )
        self._last_seen[key] = count
        if pid in self._causal_pids:
            self._check_causality(pid, notification)
        self._check_protocol_delivery(pid, notification)

    def _check_causality(self, pid: ProcessId, notification) -> None:
        """No delivery before its dependencies (correct causal nodes only).

        The per-(process, origin) delivered frontier is maintained from the
        delivery stream itself, so the check is engine-independent: it rides
        the same listener path on serial, sharded and async runs.  Dependency
        metadata is the publisher's frontier, so under causal delivery every
        named ``(o, s)`` means "all of origin *o* up to *s*" — the frontier
        comparison covers the whole interval.
        """
        event_id = notification.event_id
        if pid not in self._byzantine():
            for dep in getattr(notification, "deps", ()):
                seen = self._delivered_frontier.get((pid, dep.origin), 0)
                if seen < dep.seq:
                    self._flag(
                        "causality", pid,
                        f"delivered {event_id} before its dependency "
                        f"{dep} (delivered frontier of origin "
                        f"{dep.origin} is {seen})",
                    )
        key = (pid, event_id.origin)
        if event_id.seq > self._delivered_frontier.get(key, 0):
            self._delivered_frontier[key] = event_id.seq

    def _check_protocol_delivery(self, pid: ProcessId, notification) -> None:
        """Agreement and validity (scoped to correct processes)."""
        event_id = notification.event_id
        # Test doubles sometimes deliver payload-less notification stubs;
        # treat those like synthetic digest deliveries (payload None).
        payload = getattr(notification, "payload", None)
        byzantine = self._byzantine()

        # Record what the origin actually published: lpb_cast always
        # self-delivers before gossiping, so the publisher's own delivery is
        # the ground truth every later remote delivery is held against.
        if pid == event_id.origin and payload is not None:
            self._published.setdefault(event_id, payload)

        if pid in byzantine:
            return  # a liar's deliveries prove nothing

        if payload is not None:
            first = self._payload_of.get(event_id)
            if first is None:
                self._payload_of[event_id] = (pid, payload)
            elif payload != first[1]:
                self._flag(
                    "agreement", pid,
                    f"delivered {payload!r} for {event_id} but correct "
                    f"process {first[0]} delivered {first[1]!r}",
                )

        origin = event_id.origin
        if (origin != pid and origin in self._watched
                and origin not in byzantine):
            published = self._published.get(event_id)
            if published is None:
                self._flag(
                    "validity", pid,
                    f"delivered {event_id}, which its correct origin "
                    f"{origin} never published (ghost event)",
                )
            elif payload is not None and payload != published:
                self._flag(
                    "validity", pid,
                    f"delivered {payload!r} for {event_id} but its origin "
                    f"{origin} published {published!r}",
                )

    # -- round-path checks ---------------------------------------------------
    def _on_round(self, round_no: int, sim) -> None:
        self.checks_run += 1
        paused = getattr(sim, "_fault_paused", frozenset())
        byzantine = self._byzantine()
        for pid, node in sim.nodes.items():
            if pid in sim.crashed:
                self._check_crashed_silent(pid, node)
                continue
            self._gossip_baseline.pop(pid, None)  # recovered: re-arm later
            try:
                self._check_node_state(pid, node, round_no,
                                       skip_purge_checks=pid in paused)
                if pid not in byzantine:
                    self._check_view_hygiene(pid, node, round_no)
            except AttributeError:
                # Sharded proxy without a fresh replica (or a non-lpbcast
                # node type): state is unreadable here, not wrong.
                continue

    def _check_crashed_silent(self, pid: ProcessId, node) -> None:
        try:
            sent = node.stats.gossips_sent
        except AttributeError:
            return
        baseline = self._gossip_baseline.get(pid)
        if baseline is None:
            self._gossip_baseline[pid] = sent
        elif sent > baseline:
            self._flag("crashed-silence", pid,
                       f"gossips_sent advanced {baseline} -> {sent} after "
                       f"the fail-stop")

    def _check_node_state(self, pid: ProcessId, node, round_no: int,
                          skip_purge_checks: bool) -> None:
        cfg = node.config
        for label, buf, bound in (
            ("view", node.view, cfg.view_max),
            ("subs", node.subs, cfg.subs_max),
            ("unsubs", node.unsubs, cfg.unsubs_max),
            ("events", node.events, cfg.events_max),
            ("event_ids", node.event_ids, cfg.event_ids_max),
        ):
            try:
                size = len(buf)
            except TypeError:
                continue  # e.g. the compact digest is bounded structurally
            if size > bound:
                self._flag("buffer-bounds", pid,
                           f"|{label}| = {size} exceeds its bound {bound}")

        if pid in node.view:
            self._flag("view-excludes-owner", pid,
                       "the process holds itself in its own view")

        gate = getattr(node, "causal", None)
        if gate is not None:
            held = len(gate.held)
            if held > gate.max_holdback:
                self._flag(
                    "holdback-bound", pid,
                    f"causal hold-back queue holds {held} notifications, "
                    f"exceeding its bound {gate.max_holdback}",
                )

        if not skip_purge_checks:
            # The node ticked (and purged) at now == round_no, and Phase I
            # refuses already-obsolete entries, so nothing obsolete at
            # round_no may remain buffered.  Paused nodes skipped the purge.
            ttl = cfg.unsub_ttl
            for unsub in node.unsubs.snapshot():
                if unsub.is_obsolete(float(round_no), ttl):
                    self._flag(
                        "unsub-expiry", pid,
                        f"unsubscription of {unsub.pid} (t={unsub.timestamp})"
                        f" outlived its TTL {ttl} at round {round_no}",
                    )

    def _check_view_hygiene(self, pid: ProcessId, node,
                            round_no: int) -> None:
        """Fabricated (poison) pids in membership state, scoped to plan."""
        planned, stop_of = self._poison_windows()
        membership: List[ProcessId] = []
        try:
            membership.extend(node.view)
            membership.extend(node.subs)
        except TypeError:
            return
        ghosts = {p for p in membership
                  if isinstance(p, int) and p >= POISON_BASE}
        for ghost in sorted(ghosts - planned):
            self._flag(
                "view-hygiene", pid,
                f"fabricated pid {ghost} resides in view/subs but is "
                f"outside the plan's poison scope",
            )
        if getattr(node, "detector", None) is None:
            # Plain lpbcast trusts subscriptions (the paper's crash-stop
            # model) — planned ghosts may circulate; only failure-detecting
            # nodes are required to age them out.
            return
        for ghost in sorted(ghosts & planned):
            key = (pid, ghost)
            if round_no < stop_of.get(ghost, 0):
                self._ghost_streak.pop(key, None)  # window still open
                continue
            streak = self._ghost_streak.get(key, 0)
            if streak == "flagged":
                continue
            streak += 1
            if streak >= self.poison_grace:
                self._ghost_streak[key] = "flagged"
                self._flag(
                    "view-hygiene", pid,
                    f"failure-detecting node retained poisoned pid {ghost} "
                    f"for {streak} consecutive rounds after the poison "
                    f"window closed (grace={self.poison_grace})",
                )
            else:
                self._ghost_streak[key] = streak
        # A ghost that aged out resets its residency streak.
        for key in [k for k, v in self._ghost_streak.items()
                    if k[0] == pid and k[1] not in ghosts and v != "flagged"]:
            del self._ghost_streak[key]

    # -- reporting -----------------------------------------------------------
    def _flag(self, invariant: str, pid: Optional[ProcessId],
              detail: str) -> None:
        round_no = getattr(self._sim, "round", None) if self._sim else 0
        if round_no is None:
            # Round-less engine (async runtime): bucket by simulated time.
            round_no = int(getattr(self._sim, "now", 0))
        violation = Violation(invariant, pid, round_no, self.seed, detail)
        self.violations.append(violation)
        telemetry = getattr(self._sim, "telemetry", None)
        if telemetry is not None:
            # Violations are rare and critical: count them and force the
            # trace event through even when per-message tracing is off.
            telemetry.inc("invariants.violations", 1, invariant=invariant)
            telemetry.emit("invariant.violation", float(round_no), pid=pid,
                           force=True, invariant=invariant, detail=detail)
        if self.mode == "raise":
            raise InvariantViolation(violation)

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        """Human-readable summary, one line per violation."""
        if not self.violations:
            return (f"all invariants held "
                    f"({self.checks_run} round checks, seed={self.seed})")
        lines = [f"{len(self.violations)} invariant violation(s), "
                 f"seed={self.seed}:"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)
