"""Engine-side application of a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` instance belongs to one run of one engine.  It
turns the plan's declarative windows into per-round actions and per-message
verdicts, drawing every probabilistic decision from a single dedicated
stream (``seeds.rng("faults")``), so a run is fully determined by
``(plan, root seed)``.

Serial/sharded bit-identity rests on a contract both round engines honor:

* ``round_start`` is called exactly once per round, before ticking;
* ``decide`` is called exactly once per queued message, in the shuffled
  queue order, for every delivery generation — *before* the engine's
  network-admission draw for that message.

Because the two engines build identical queues in identical order (see
:mod:`repro.sim.parallel_runner`), the injector consumes its stream
identically and the runs stay bit-for-bit equal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.ids import ProcessId
from .plan import FORGE_SEQ_BASE, CrashFault, FaultPlan


class FaultVerdict:
    """Outcome of one ``decide`` call.

    ``action`` is ``"deliver"``, ``"drop"`` or ``"delay"``; ``copies`` is the
    total delivery count (2+ when duplication struck); ``delay`` is the
    hold-back in rounds for ``"delay"``.  ``mutation`` is a Byzantine
    payload-mutation spec (applied by :func:`repro.faults.byzantine.mutate_message`
    at delivery time) or ``None``; ``replay`` > 0 schedules a stale copy of
    the message that many rounds later.
    """

    __slots__ = ("action", "copies", "delay", "mutation", "replay")

    def __init__(self, action: str, copies: int = 1, delay: int = 0,
                 mutation: Optional[tuple] = None, replay: int = 0) -> None:
        self.action = action
        self.copies = copies
        self.delay = delay
        self.mutation = mutation
        self.replay = replay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultVerdict({self.action!r}, copies={self.copies}, "
                f"delay={self.delay}, mutation={self.mutation}, "
                f"replay={self.replay})")


# Shared immutable verdicts for the two overwhelmingly common outcomes.
_DELIVER = FaultVerdict("deliver")
_DROP = FaultVerdict("drop")


@dataclass(frozen=True)
class RoundActions:
    """What the engine must apply at the start of a round."""

    crashes: Tuple[CrashFault, ...]
    recoveries: Tuple[CrashFault, ...]
    paused: frozenset


@dataclass
class InjectorStats:
    """Counters of faults actually struck (chaos reports embed them)."""

    decisions: int = 0
    dropped: int = 0
    partition_blocked: int = 0
    duplicated: int = 0
    delayed: int = 0
    crashes_applied: int = 0
    recoveries_applied: int = 0
    pause_rounds: int = 0
    equivocated: int = 0
    forged: int = 0
    replayed: int = 0
    poisoned: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class FaultInjector:
    """Applies one :class:`FaultPlan` deterministically from one stream."""

    plan: FaultPlan
    rng: random.Random
    stats: InjectorStats = field(default_factory=InjectorStats)
    _round: int = 0

    # -- per-round schedule --------------------------------------------------
    def round_start(self, round_no: int) -> RoundActions:
        """Advance to ``round_no``; returns the crashes, recoveries and the
        paused-pid set the engine must apply before ticking."""
        self._round = round_no
        crashes = tuple(c for c in self.plan.crashes if c.at == round_no)
        recoveries = tuple(c for c in self.plan.crashes
                           if c.recover_at == round_no)
        paused = frozenset(p.pid for p in self.plan.pauses
                           if p.at <= round_no < p.at + p.duration)
        self.stats.crashes_applied += len(crashes)
        self.stats.recoveries_applied += len(recoveries)
        self.stats.pause_rounds += len(paused)
        return RoundActions(crashes, recoveries, paused)

    def is_paused(self, pid: ProcessId, round_no: Optional[int] = None) -> bool:
        r = self._round if round_no is None else round_no
        return any(p.pid == pid and p.at <= r < p.at + p.duration
                   for p in self.plan.pauses)

    # -- per-message verdicts ------------------------------------------------
    def decide(self, src: ProcessId, dst: ProcessId,
               round_no: Optional[int] = None) -> FaultVerdict:
        """One verdict for one src→dst message; consumes the fault stream.

        Check order is fixed (partition, drop, delay, Byzantine —
        equivocate, forge, poison, replay — then duplicate) with
        short-circuit on a decisive outcome — the order is part of the
        determinism contract, never reorder it.
        """
        r = self._round if round_no is None else round_no
        self.stats.decisions += 1

        for p in self.plan.partitions:
            if p.start <= r < p.heal and p.blocks(src, dst):
                self.stats.partition_blocked += 1
                return _DROP

        for d in self.plan.drops:
            if (d.start <= r < d.stop and d.matches(src, dst)
                    and self.rng.random() < d.rate):
                self.stats.dropped += 1
                return _DROP

        for d in self.plan.delays:
            if d.start <= r < d.stop and self.rng.random() < d.rate:
                self.stats.delayed += 1
                return FaultVerdict("delay", delay=d.delay)

        # Byzantine behaviors of the *sender*: the verdict carries a
        # mutation spec the engine applies to the in-flight copy at delivery
        # time (coordinator-drawn here so both round engines see identical
        # stream consumption; the payload itself may live on a shard).
        # First strike wins per category.
        mutation: Optional[tuple] = None
        replay = 0
        for e in self.plan.equivocations:
            if (e.pid == src and e.start <= r < e.stop
                    and self.rng.random() < e.rate and mutation is None):
                self.stats.equivocated += 1
                mutation = ("equivocate", e.variants)
        for f in self.plan.forges:
            if (f.pid == src and f.start <= r < f.stop
                    and self.rng.random() < f.rate and mutation is None):
                self.stats.forged += 1
                mutation = ("forge", f.victim,
                            FORGE_SEQ_BASE + self.rng.randrange(1 << 16))
        for p in self.plan.poisons:
            if (p.pid == src and p.start <= r < p.stop
                    and self.rng.random() < p.rate and mutation is None):
                self.stats.poisoned += 1
                fabricated = p.fabricated
                mutation = ("poison",
                            fabricated[self.rng.randrange(len(fabricated))])
        for rp in self.plan.replays:
            if (rp.pid == src and rp.start <= r < rp.stop
                    and self.rng.random() < rp.rate and replay == 0):
                self.stats.replayed += 1
                replay = rp.lag

        copies = 1
        for d in self.plan.duplicates:
            if d.start <= r < d.stop and self.rng.random() < d.rate:
                copies += 1
        if copies > 1 or mutation is not None or replay:
            if copies > 1:
                self.stats.duplicated += copies - 1
            return FaultVerdict("deliver", copies=copies, mutation=mutation,
                                replay=replay)
        return _DELIVER

    # -- recovery support ----------------------------------------------------
    def pick_contact(
        self, candidates: Sequence[ProcessId]
    ) -> Optional[ProcessId]:
        """Draw the re-subscription contact for a recovering process from the
        fault stream (so recovery is replayable like every other fault).
        ``candidates`` must be in a deterministic order."""
        if not candidates:
            return None
        return candidates[self.rng.randrange(len(candidates))]

    # -- introspection -------------------------------------------------------
    def active_faults(self, round_no: Optional[int] = None) -> List[str]:
        """Names of fault windows open at ``round_no`` (for progress logs)."""
        r = self._round if round_no is None else round_no
        active: List[str] = []
        active += [f"drop@{d.rate:.0%}" for d in self.plan.drops
                   if d.start <= r < d.stop]
        active += [f"dup@{d.rate:.0%}" for d in self.plan.duplicates
                   if d.start <= r < d.stop]
        active += [f"delay+{d.delay}@{d.rate:.0%}" for d in self.plan.delays
                   if d.start <= r < d.stop]
        active += [f"partition({p.direction})" for p in self.plan.partitions
                   if p.start <= r < p.heal]
        active += [f"pause(p{p.pid})" for p in self.plan.pauses
                   if p.at <= r < p.at + p.duration]
        active += [f"equivocate(p{e.pid})" for e in self.plan.equivocations
                   if e.start <= r < e.stop]
        active += [f"forge(p{f.pid})" for f in self.plan.forges
                   if f.start <= r < f.stop]
        active += [f"replay(p{p.pid})" for p in self.plan.replays
                   if p.start <= r < p.stop]
        active += [f"poison(p{p.pid})" for p in self.plan.poisons
                   if p.start <= r < p.stop]
        return active
