"""Fault injection at a real send boundary (the UDP runtime).

The simulators apply faults round-by-round under a global clock; a
:class:`~repro.runtime.udp.UdpProcessHost` lives on wall-clock threads, so
:class:`DatagramFaultInjector` adapts the same :class:`FaultPlan` to that
world: time is mapped onto rounds (round ``r`` spans
``[(r-1)*round_duration, r*round_duration)`` from the first send), verdicts
come from one shared :class:`~repro.faults.injector.FaultInjector` behind a
lock (hosts send concurrently), and a delay verdict becomes seconds for the
host to hold the datagram back.

Message-level faults only — drop, duplicate, delay, partition.  Process
faults (crash/pause/recovery) belong to whoever owns the process lifecycle;
over UDP that is the deployment harness, not the send path.
"""

from __future__ import annotations

import random
import threading
from typing import Optional, Tuple

from ..core.ids import ProcessId
from .injector import FaultInjector, FaultVerdict, InjectorStats
from .plan import FaultPlan


class DatagramFaultInjector:
    """Thread-safe, wall-clock adapter of a :class:`FaultPlan` for the UDP
    send path.

    >>> injector = DatagramFaultInjector(FaultPlan().drop(0.1),
    ...                                  rng=random.Random(7),
    ...                                  round_duration=0.05)
    >>> verdict, delay_s = injector.decide(src=1, dst=2, now=0.0)
    """

    def __init__(self, plan: FaultPlan, rng: Optional[random.Random] = None,
                 round_duration: float = 0.05) -> None:
        if round_duration <= 0:
            raise ValueError("round_duration must be positive")
        self.round_duration = round_duration
        self._injector = FaultInjector(
            plan, rng if rng is not None else random.Random()
        )
        self._lock = threading.Lock()
        self._t0: Optional[float] = None

    @property
    def plan(self) -> FaultPlan:
        return self._injector.plan

    @property
    def stats(self) -> InjectorStats:
        return self._injector.stats

    def decide(self, src: ProcessId, dst: ProcessId,
               now: float) -> Tuple[FaultVerdict, float]:
        """Verdict for one datagram plus its hold-back in seconds."""
        with self._lock:
            if self._t0 is None:
                self._t0 = now
            round_no = int((now - self._t0) / self.round_duration) + 1
            verdict = self._injector.decide(src, dst, round_no)
        return verdict, verdict.delay * self.round_duration
