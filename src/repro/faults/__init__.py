"""Unified deterministic fault injection and invariant monitoring.

One :class:`FaultPlan` describes a hostile episode (drops, duplicates, delay
spikes, partitions with heal, crash-with-recovery, slow nodes); the same
plan wires into every engine — ``sim.use_fault_plan(plan)`` on the serial
and sharded round engines (bit-identical runs for the same root seed),
``runtime.use_fault_plan(plan)`` on the async runtime, and
:class:`DatagramFaultInjector` at the UDP send boundary.
:class:`InvariantMonitor` checks the paper's safety properties live while
the chaos plays out, and :mod:`repro.faults.chaos` soaks seeded scenarios.
"""

from .byzantine import equivocated_payload, mutate_message
from .chaos import (
    PRESET_NAMES,
    ChaosResult,
    agreement_violations,
    causality_violations,
    format_soak_report,
    run_chaos_scenario,
    run_chaos_soak,
)
from .injector import FaultInjector, FaultVerdict, InjectorStats, RoundActions
from .invariants import InvariantMonitor, InvariantViolation, Violation
from .plan import (
    FORGE_SEQ_BASE,
    POISON_BASE,
    CrashFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    EquivocateFault,
    FaultPlan,
    ForgeDigestFault,
    PartitionFault,
    PauseFault,
    PlanCodecError,
    PoisonViewFault,
    ReplayStaleFault,
)
from .wire import DatagramFaultInjector

__all__ = [
    "FORGE_SEQ_BASE",
    "POISON_BASE",
    "PRESET_NAMES",
    "ChaosResult",
    "CrashFault",
    "DatagramFaultInjector",
    "DelayFault",
    "DropFault",
    "DuplicateFault",
    "EquivocateFault",
    "FaultInjector",
    "FaultPlan",
    "FaultVerdict",
    "ForgeDigestFault",
    "InjectorStats",
    "InvariantMonitor",
    "InvariantViolation",
    "PartitionFault",
    "PauseFault",
    "PlanCodecError",
    "PoisonViewFault",
    "ReplayStaleFault",
    "RoundActions",
    "Violation",
    "agreement_violations",
    "causality_violations",
    "equivocated_payload",
    "format_soak_report",
    "mutate_message",
    "run_chaos_scenario",
    "run_chaos_soak",
]
