"""Chaos soak harness: seeded scenarios × random fault plans × invariants.

One chaos run composes three layers that already exist separately:

1. a scenario preset from :mod:`repro.sim.scenarios` (steady state, flash
   crowd, mass departure, correlated crashes, flaky WAN);
2. a random :class:`~repro.faults.plan.FaultPlan` drawn from the run's seed
   (drops, duplicates, delay spikes, a partition with heal,
   crash-with-recovery, slow nodes);
3. an :class:`~repro.faults.invariants.InvariantMonitor` in collect mode.

The run publishes a workload, rides out the chaos, and reports delivery
reliability together with the invariant outcome.  *Reliability* is data —
under a harsh enough plan it may legitimately sag (that is Fig. 6's story);
*invariants* are the pass/fail signal: safety must hold under any schedule.
Every result is replayable from ``(preset, n, rounds, seed, intensity)``.

``repro chaos`` (the CLI) drives :func:`run_chaos_soak`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..sim.rng import derive_rng, derive_seed
from .invariants import InvariantMonitor, Violation
from .plan import FaultPlan

#: Preset name -> builder accepting (n=..., seed=...); all scenario presets
#: from repro.sim.scenarios qualify.
PresetBuilder = Callable[..., object]


def _presets() -> Dict[str, PresetBuilder]:
    from ..sim import scenarios

    return {
        "steady_state": scenarios.steady_state,
        "flash_crowd": scenarios.flash_crowd,
        "mass_departure": scenarios.mass_departure,
        "correlated_crashes": scenarios.correlated_crashes,
        "flaky_wan": scenarios.flaky_wan,
    }


PRESET_NAMES = ("steady_state", "flash_crowd", "mass_departure",
                "correlated_crashes", "flaky_wan")


@dataclass
class ChaosResult:
    """Outcome of one chaos scenario run."""

    preset: str
    seed: int
    n: int
    rounds: int
    plan_summary: str
    events_published: int
    reliability: Optional[float]
    worst_event_coverage: Optional[float]
    survivors: int
    violations: List[Violation] = field(default_factory=list)
    fault_stats: Dict[str, int] = field(default_factory=dict)
    #: The run's telemetry registry (counters, timers, and — when the run
    #: was started with ``tracing=True`` — the trace-event stream).  Feed it
    #: to repro.telemetry.exporters for JSONL/Prometheus dumps of the run.
    telemetry: Optional[object] = None

    @property
    def ok(self) -> bool:
        """Safety verdict: no invariant violated (reliability is reported,
        not judged — see the module docstring)."""
        return not self.violations

    def summary(self) -> str:
        rel = "n/a" if self.reliability is None else f"{self.reliability:.4f}"
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (f"{self.preset:<20} seed={self.seed:<22} n={self.n} "
                f"rounds={self.rounds} reliability={rel} "
                f"survivors={self.survivors} invariants={verdict}")


def run_chaos_scenario(
    preset: str = "steady_state",
    n: int = 40,
    rounds: int = 50,
    seed: int = 0,
    intensity: float = 1.0,
    publishes: int = 5,
    plan: Optional[FaultPlan] = None,
    tracing: bool = False,
    byzantine_rate: float = 0.0,
    byzantine_nodes: int = 0,
    causal: bool = False,
) -> ChaosResult:
    """Run one preset under one (random or given) fault plan with live
    invariant monitoring; fully determined by the arguments.

    ``tracing=True`` additionally records the per-message trace stream
    (sends, receives, fault verdicts) into the sim's telemetry registry —
    telemetry is engine-native and consumes no randomness, so the run is
    bit-identical with tracing on or off.

    ``byzantine_nodes`` > 0 turns that many processes into liars (see
    :meth:`FaultPlan.random`) *and* builds the preset on the double-echo
    protocol variant with majority thresholds, so the soak exercises the
    defended configuration — the agreement invariant must then hold, which
    ``repro chaos`` asserts as its end-of-soak SLO.

    ``causal=True`` builds the preset on the causal-delivery variant
    (hold-back gates, retransmit-driven dependency recovery) so the soak
    hunts ordering bugs under loss, partitions and crashes — the
    ``causality`` and ``holdback-bound`` invariants must then hold, which
    ``repro chaos --causal`` asserts as its end-of-soak SLO.  Mutually
    exclusive with ``byzantine_nodes`` (double-echo staging and the
    hold-back queue are different delivery disciplines).
    """
    builders = _presets()
    if preset not in builders:
        raise ValueError(f"unknown preset {preset!r}; "
                         f"expected one of {PRESET_NAMES}")
    if causal and byzantine_nodes > 0:
        raise ValueError(
            "causal=True is incompatible with byzantine_nodes > 0: the "
            "double-echo variant and the causal hold-back queue are "
            "mutually exclusive delivery disciplines")
    config = None
    if byzantine_nodes > 0:
        from ..core.config import LpbcastConfig

        config = LpbcastConfig(
            fanout=3, view_max=n - 1,
            double_echo=True, digest_implies_delivery=False,
            echo_fanout=n - 1,
            echo_threshold=n // 2 + 1, ready_threshold=n // 2 + 1,
        )
    elif causal:
        from ..core.config import LpbcastConfig

        config = LpbcastConfig(
            fanout=3, view_max=n - 1,
            causal_delivery=True, digest_implies_delivery=False,
            retransmissions=True,
        )
    scenario = builders[preset](n=n, seed=seed, config=config)
    sim = scenario.sim
    sim.telemetry.tracing = tracing
    pids = [node.pid for node in scenario.nodes]

    if plan is None:
        plan = FaultPlan.random(pids, horizon=rounds,
                                rng=derive_rng(seed, "chaos-plan"),
                                intensity=intensity,
                                byzantine_rate=byzantine_rate,
                                byzantine_nodes=byzantine_nodes)
    injector = sim.use_fault_plan(plan)
    monitor = InvariantMonitor(mode="collect").attach(sim)

    # Workload: one publish per round for the first ``publishes`` rounds,
    # from a seeded draw over the processes still able to publish.
    pub_rng = derive_rng(seed, "chaos-publish")
    published: List = []

    def publish_hook(round_no: int, s) -> None:
        if round_no > publishes:
            return
        ready = [p for p in pids
                 if s.alive(p) and p not in s._fault_paused
                 and not getattr(s.nodes[p], "unsubscribed", False)]
        if not ready:
            return
        pid = ready[pub_rng.randrange(len(ready))]
        event = s.nodes[pid].lpb_cast(f"chaos-{round_no}", float(round_no))
        published.append(event.event_id)

    sim.add_round_hook(publish_hook)
    sim.run(rounds)

    survivors = [p for p in pids if sim.alive(p)
                 and not getattr(sim.nodes[p], "unsubscribed", False)]
    reliability = worst = None
    if published and survivors:
        from ..metrics.reliability import measure_reliability

        report = measure_reliability(scenario.log, published, survivors)
        reliability, worst = report.reliability, report.worst_event_coverage

    return ChaosResult(
        preset=preset,
        seed=seed,
        n=n,
        rounds=rounds,
        plan_summary=plan.describe(),
        events_published=len(published),
        reliability=reliability,
        worst_event_coverage=worst,
        survivors=len(survivors),
        violations=list(monitor.violations),
        fault_stats=injector.stats.as_dict(),
        telemetry=sim.telemetry,
    )


def run_chaos_soak(
    scenarios: int = 10,
    n: int = 40,
    rounds: int = 50,
    seed: int = 0,
    intensity: float = 1.0,
    presets: Optional[Sequence[str]] = None,
    byzantine_rate: float = 0.0,
    byzantine_nodes: int = 0,
    causal: bool = False,
) -> List[ChaosResult]:
    """Run ``scenarios`` seeded chaos runs, cycling through ``presets``
    (default: all of them).  Each run's seed derives from ``seed`` and its
    index, so any failing line of the report replays in isolation."""
    chosen = tuple(presets) if presets else PRESET_NAMES
    results: List[ChaosResult] = []
    for i in range(scenarios):
        preset = chosen[i % len(chosen)]
        run_seed = derive_seed(seed, "chaos-soak", i)
        results.append(
            run_chaos_scenario(preset=preset, n=n, rounds=rounds,
                               seed=run_seed, intensity=intensity,
                               byzantine_rate=byzantine_rate,
                               byzantine_nodes=byzantine_nodes,
                               causal=causal)
        )
    return results


def agreement_violations(results: Sequence[ChaosResult]) -> List[Violation]:
    """Every agreement-invariant violation across a soak — the ``repro
    chaos --byzantine-nodes`` SLO is that this list is empty."""
    return [violation
            for result in results
            for violation in result.violations
            if violation.invariant == "agreement"]


def causality_violations(results: Sequence[ChaosResult]) -> List[Violation]:
    """Every causal-ordering violation across a soak — the ``repro chaos
    --causal`` SLO is that this list is empty.  Covers both the
    ``causality`` invariant (a delivery preceded one of its dependencies)
    and ``holdback-bound`` (a hold-back queue outgrew its configured
    bound)."""
    return [violation
            for result in results
            for violation in result.violations
            if violation.invariant in ("causality", "holdback-bound")]


def format_soak_report(results: Sequence[ChaosResult]) -> str:
    """Multi-line report: one summary line per run, then the verdict and
    every violation with its replay hint."""
    lines = [result.summary() for result in results]
    failures = [r for r in results if not r.ok]
    total_events = sum(r.events_published for r in results)
    measured = [r.reliability for r in results if r.reliability is not None]
    mean_rel = (sum(measured) / len(measured)) if measured else None
    lines.append(
        f"-- {len(results)} scenario(s), {total_events} events, "
        + (f"mean reliability {mean_rel:.4f}, " if mean_rel is not None else "")
        + f"{len(failures)} with invariant violations"
    )
    for result in failures:
        lines.append(f"FAILED {result.preset} (seed={result.seed}): "
                     f"plan: {result.plan_summary}")
        for violation in result.violations:
            lines.append(f"  {violation}")
    return "\n".join(lines)
