"""Application of Byzantine mutation specs to in-flight messages.

A :class:`~repro.faults.injector.FaultInjector` verdict may carry a
*mutation spec* — a small plain tuple describing how the (Byzantine) sender
lies on this particular copy of the message.  The spec is drawn
coordinator-side from the seeded fault stream; this module applies it at
delivery time, which is the one place both round engines hold the actual
message object (the sharded coordinator routes payload-free refs, so the
spec rides the ref and the owning shard performs the rewrite).

:func:`mutate_message` is pure — it returns a *new* message and never
touches the original, mirroring the immutable-record discipline of
:mod:`repro.core.message` — and total: specs only apply to
:class:`~repro.core.message.GossipMessage` (the paper's only lying surface);
any other message type passes through unchanged, so the injector can draw
verdicts without knowing message types and both engines stay bit-identical.

Spec vocabulary (first element selects the behavior):

* ``("equivocate", variants)`` — rewrite the payloads of the sender's *own*
  events (``event_id.origin == src``), choosing the variant by destination
  (``dst % variants``), so different receivers get conflicting payloads for
  the same event id.
* ``("forge", victim, seq)`` — append ``EventId(victim, seq)`` to the
  digest, advertising an event the victim never published.
* ``("poison", pid)`` — append a fabricated process id to the gossip's
  subscriptions, injecting a ghost member into receivers' views.

Replay (the fourth Byzantine behavior) needs no mutation: the engines
schedule a stale copy of the unmodified message via the existing
delayed-fault machinery.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from ..core.ids import EventId, ProcessId
from ..core.message import GossipMessage


def equivocated_payload(payload, variant: int):
    """The payload an equivocating sender substitutes for ``variant``.

    Variant 0 keeps the original payload (some receivers see the truth —
    the hardest case for agreement checking); higher variants get a tagged
    rewrite that is JSON-stable and never equal to the original.
    """
    if variant == 0:
        return payload
    return {"equivocation": variant, "was": repr(payload)}


def mutate_message(message, spec: Optional[Tuple],
                   dst: ProcessId):
    """Apply a Byzantine mutation spec to one in-flight message copy.

    Returns ``message`` itself when the spec is ``None`` or does not apply
    (non-gossip message, or nothing to rewrite) — callers may rely on
    identity to skip re-encoding.
    """
    if spec is None or not isinstance(message, GossipMessage):
        return message
    kind = spec[0]
    if kind == "equivocate":
        variants = spec[1]
        variant = dst % variants
        rewritten = tuple(
            n._replace(payload=equivocated_payload(n.payload, variant))
            if n.event_id.origin == message.sender and n.payload is not None
            else n
            for n in message.events
        )
        if rewritten == message.events:
            return message
        return replace(message, events=rewritten)
    if kind == "forge":
        victim, seq = spec[1], spec[2]
        forged = EventId(victim, seq)
        if forged in message.event_ids:
            return message
        return replace(message, event_ids=message.event_ids + (forged,))
    if kind == "poison":
        ghost = spec[1]
        if ghost in message.subs:
            return message
        return replace(message, subs=message.subs + (ghost,))
    raise ValueError(f"unknown byzantine mutation spec {spec!r}")
