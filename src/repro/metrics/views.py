"""Membership-view statistics and partition detection.

Sec. 4.3/6.1: ideally "every process should ... be known by exactly l other
processes" — in-degree statistics quantify how close a run gets to that
ideal.  Sec. 4.4 defines partitioning: "two or more distinct subsets of
processes in the system, in each of which no process knows about any process
outside its partition" — on the *knows-about* digraph this is exactly the
condition that some union of strongly-connected-and-closed subsets splits the
graph; we detect it as the graph not being weakly connected *or* containing a
closed proper subset (no edges leaving the subset in either direction is the
paper's two-sided isolation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

import networkx as nx

from ..core.ids import ProcessId


def view_graph(nodes: Iterable) -> "nx.DiGraph":
    """Directed *knows-about* graph: edge p→q iff q is in p's view."""
    graph = nx.DiGraph()
    for node in nodes:
        graph.add_node(node.pid)
    for node in nodes:
        for target in node.view:
            graph.add_edge(node.pid, target)
    return graph


@dataclass(frozen=True)
class InDegreeStats:
    """Summary of how many processes know each process."""

    mean: float
    std: float
    minimum: int
    maximum: int
    isolated: int  # processes nobody knows (in-degree 0)

    def coefficient_of_variation(self) -> float:
        return self.std / self.mean if self.mean else math.inf


def in_degree_stats(nodes: Iterable) -> InDegreeStats:
    """In-degree statistics over the knows-about graph.

    With perfectly uniform views of size ``l`` the mean in-degree is exactly
    ``l`` (every view contributes l edges) and the distribution is
    approximately binomial with small variance.
    """
    graph = view_graph(nodes)
    degrees = [graph.in_degree(pid) for pid in graph.nodes]
    if not degrees:
        raise ValueError("no nodes")
    mean = sum(degrees) / len(degrees)
    var = sum((d - mean) ** 2 for d in degrees) / len(degrees)
    return InDegreeStats(
        mean=mean,
        std=math.sqrt(var),
        minimum=min(degrees),
        maximum=max(degrees),
        isolated=sum(1 for d in degrees if d == 0),
    )


def in_degree_distribution(nodes: Iterable) -> Dict[int, int]:
    """Histogram: in-degree -> number of processes with that in-degree."""
    graph = view_graph(nodes)
    histogram: Dict[int, int] = {}
    for pid in graph.nodes:
        degree = graph.in_degree(pid)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def find_partitions(nodes: Iterable) -> List[Set[ProcessId]]:
    """Partition components in the paper's sense (Sec. 4.4).

    Returns the weakly connected components of the knows-about graph.  More
    than one component means membership knowledge has split into mutually
    oblivious islands — the unrecoverable situation the analysis bounds with
    Ψ.  (A weakly connected graph cannot be partitioned in the paper's
    two-sided sense: any edge across a candidate split, in either direction,
    means one side knows about the other.)
    """
    graph = view_graph(nodes)
    return [set(component) for component in nx.weakly_connected_components(graph)]


def is_partitioned(nodes: Iterable) -> bool:
    return len(find_partitions(nodes)) > 1


def dissemination_reachable(nodes: Iterable, origin: ProcessId) -> Set[ProcessId]:
    """Processes reachable from ``origin`` along view edges — an upper bound
    on who could ever be infected by a notification published at ``origin``
    if the views froze now."""
    graph = view_graph(nodes)
    if origin not in graph:
        return set()
    reachable = set(nx.descendants(graph, origin))
    reachable.add(origin)
    return reachable


def view_uniformity_chi2(nodes: Sequence, view_size: int) -> float:
    """Pearson χ² statistic of observed in-degrees against the uniform-view
    ideal (binomial with mean ``view_size``).

    Under perfectly uniform independent views each process is in any other's
    view with probability l/(n-1), so the in-degree of every process is
    Binomial(n-1, l/(n-1)) with mean l.  We bin observed in-degrees and
    compare against that law; smaller is more uniform.  Used comparatively
    (weighted vs plain views), not as a formal hypothesis test.
    """
    from scipy import stats as scipy_stats

    nodes = list(nodes)
    n = len(nodes)
    if n < 2:
        raise ValueError("need at least two nodes")
    graph = view_graph(nodes)
    degrees = [graph.in_degree(node.pid) for node in nodes]
    p = min(1.0, view_size / (n - 1))
    law = scipy_stats.binom(n - 1, p)

    # Bin: 0..2l individually, tail lumped.
    cap = 2 * view_size
    observed = [0.0] * (cap + 2)
    for degree in degrees:
        observed[min(degree, cap + 1)] += 1
    expected = [n * law.pmf(k) for k in range(cap + 1)]
    expected.append(n * (1.0 - law.cdf(cap)))

    chi2 = 0.0
    for obs, exp in zip(observed, expected):
        if exp > 1e-12:
            chi2 += (obs - exp) ** 2 / exp
    return chi2
