"""Measurement instruments: delivery logs, infection curves, reliability
(1-β), view-graph statistics and text reporting."""

from .delivery import DeliveryLog
from .infection import InfectionObserver, mean_curves
from .reliability import (
    ReliabilityReport,
    coverage_histogram,
    measure_reliability,
    per_event_coverage,
)
from .report import format_series, format_table, merge_curves
from .views import (
    InDegreeStats,
    dissemination_reachable,
    find_partitions,
    in_degree_distribution,
    in_degree_stats,
    is_partitioned,
    view_graph,
    view_uniformity_chi2,
)

__all__ = [
    "coverage_histogram",
    "DeliveryLog",
    "dissemination_reachable",
    "find_partitions",
    "format_series",
    "format_table",
    "in_degree_distribution",
    "in_degree_stats",
    "InDegreeStats",
    "InfectionObserver",
    "is_partitioned",
    "mean_curves",
    "measure_reliability",
    "merge_curves",
    "per_event_coverage",
    "ReliabilityReport",
    "view_graph",
    "view_uniformity_chi2",
]
