"""Infection curves — the per-round infected-process counts of Figs. 2–5, 7.

"A process which has delivered a given notification will be termed infected,
otherwise susceptible" (Sec. 4.1).  :class:`InfectionObserver` is a round
observer recording, after every round, how many processes have delivered the
tracked notification.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.ids import EventId
from .delivery import DeliveryLog


class InfectionObserver:
    """Tracks the infection curve of one notification.

    Register with ``sim.add_observer(observer.on_round)``.  ``counts[r]`` is
    the number of infected processes at the end of round ``r`` (the publisher
    makes the count 1 before the first gossip round, matching ``s_0 = 1``).
    """

    def __init__(self, log: DeliveryLog, event_id: EventId) -> None:
        self.log = log
        self.event_id = event_id
        self.counts: Dict[int, int] = {0: 1}

    def on_round(self, round_number: int, sim) -> None:
        self.counts[round_number] = self.log.delivery_count(self.event_id)

    def curve(self, rounds: Optional[int] = None) -> List[int]:
        """Counts for rounds 0..rounds (defaults to all observed rounds)."""
        last = rounds if rounds is not None else max(self.counts)
        series: List[int] = []
        current = self.counts.get(0, 1)
        for r in range(last + 1):
            current = self.counts.get(r, current)
            series.append(current)
        return series

    def rounds_to_reach(self, count: int) -> Optional[int]:
        """First round at which at least ``count`` processes were infected."""
        for r in sorted(self.counts):
            if self.counts[r] >= count:
                return r
        return None

    def rounds_to_fraction(self, fraction: float, population: int) -> Optional[int]:
        """First round infecting at least ``fraction`` of ``population``
        (the paper's Fig. 3(b) uses fraction = 0.99)."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        return self.rounds_to_reach(int(round(fraction * population)))


def mean_curves(curves: Sequence[Sequence[float]]) -> List[float]:
    """Average several infection curves pointwise (ragged tails extend with
    each curve's final value, i.e. an absorbed epidemic stays absorbed)."""
    if not curves:
        return []
    length = max(len(c) for c in curves)
    total = [0.0] * length
    for curve in curves:
        for i in range(length):
            total[i] += curve[i] if i < len(curve) else curve[-1]
    return [value / len(curves) for value in total]
