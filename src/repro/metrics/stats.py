"""Statistical helpers for experiment reporting.

Reliability (1-β) is estimated as a binomial proportion over
(event, process) pairs; infection-latency numbers are means over seeds.
These helpers attach honest uncertainty to both, so bench output and
EXPERIMENTS.md can state *reliability = 0.73 ± 0.02* instead of a bare
point estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class SummaryStats:
    """Mean and dispersion of a sample."""

    mean: float
    std: float
    stderr: float
    count: int
    minimum: float
    maximum: float

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for the mean."""
        half = z * self.stderr
        return self.mean - half, self.mean + half

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4f} ± {1.96 * self.stderr:.4f} (n={self.count})"


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summary statistics of a sample (sample standard deviation)."""
    if not values:
        raise ValueError("need at least one value")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    std = math.sqrt(var)
    return SummaryStats(
        mean=mean,
        std=std,
        stderr=std / math.sqrt(n),
        count=n,
        minimum=min(values),
        maximum=max(values),
    )


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation for reliability estimates near
    0 or 1 (exactly where Fig. 6's interesting points live).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    p = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denominator
    half = (
        z * math.sqrt(p * (1.0 - p) / trials + z2 / (4 * trials * trials))
        / denominator
    )
    return max(0.0, centre - half), min(1.0, centre + half)


def proportion_summary(successes: int, trials: int) -> str:
    """Human-readable proportion with its Wilson 95% interval."""
    low, high = wilson_interval(successes, trials)
    return f"{successes / trials:.4f} [{low:.4f}, {high:.4f}]"


def compare_means(a: Sequence[float], b: Sequence[float]) -> float:
    """Welch's t statistic for two samples (positive when mean(a) > mean(b)).

    Benches use it as an effect-size sanity check — e.g. that a claimed
    "weak dependence" really is statistically weak (|t| small) while a
    claimed strong effect is large.
    """
    sa, sb = summarize(a), summarize(b)
    denom = math.sqrt(sa.stderr**2 + sb.stderr**2)
    if denom == 0.0:
        if sa.mean == sb.mean:
            return 0.0
        return math.inf if sa.mean > sb.mean else -math.inf
    return (sa.mean - sb.mean) / denom
