"""Delivery accounting.

A :class:`DeliveryLog` attaches to any set of nodes exposing
``add_delivery_listener`` and records every LPB-DELIVER.  It distinguishes
*first* deliveries from *re-deliveries*: the protocol's own duplicate
detection is bounded (ids evicted from ``eventIds`` are forgotten, Sec. 5.2),
so a notification can legitimately be delivered twice by the protocol — the
log's unbounded memory is the experiment's ground truth, not the node's.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.events import Notification
from ..core.ids import EventId, ProcessId


class DeliveryLog:
    """Ground-truth record of which process delivered which notification."""

    def __init__(self) -> None:
        self._delivered: Dict[EventId, Set[ProcessId]] = defaultdict(set)
        self._first_delivery_time: Dict[Tuple[ProcessId, EventId], float] = {}
        self.total_deliveries = 0
        self.redeliveries = 0

    # -- wiring --------------------------------------------------------------
    def attach(self, nodes: Iterable) -> "DeliveryLog":
        """Register this log as a delivery listener on every node."""
        for node in nodes:
            node.add_delivery_listener(self.on_delivery)
        return self

    def on_delivery(self, pid: ProcessId, notification: Notification, now: float) -> None:
        self.total_deliveries += 1
        event_id = notification.event_id
        key = (pid, event_id)
        if key in self._first_delivery_time:
            self.redeliveries += 1
            return
        self._first_delivery_time[key] = now
        self._delivered[event_id].add(pid)

    # -- queries -------------------------------------------------------------
    def delivered(self, pid: ProcessId, event_id: EventId) -> bool:
        return pid in self._delivered.get(event_id, ())

    def deliverers_of(self, event_id: EventId) -> Set[ProcessId]:
        return set(self._delivered.get(event_id, ()))

    def delivery_count(self, event_id: EventId) -> int:
        return len(self._delivered.get(event_id, ()))

    def delivery_time(self, pid: ProcessId, event_id: EventId) -> Optional[float]:
        return self._first_delivery_time.get((pid, event_id))

    def latencies(self, event_id: EventId, published_at: float) -> List[float]:
        """First-delivery latencies of ``event_id`` across processes."""
        return [
            time - published_at
            for (pid, eid), time in self._first_delivery_time.items()
            if eid == event_id
        ]

    def known_events(self) -> List[EventId]:
        return list(self._delivered)

    def __len__(self) -> int:
        return len(self._first_delivery_time)
