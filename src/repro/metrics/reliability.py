"""Delivery reliability — the 1-β measure of Figs. 6 and 7(b).

"The measure of reliability is expressed here by the probability for any
given process to deliver any given notification (1 − β, cf. Section 2)."

Estimated as the fraction of (notification, process) pairs that were
delivered, over all published notifications and all correct (non-crashed)
member processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..core.ids import EventId, ProcessId
from .delivery import DeliveryLog


@dataclass(frozen=True)
class ReliabilityReport:
    """Aggregate reliability over a run."""

    reliability: float          # 1 - beta
    pairs_total: int
    pairs_delivered: int
    events: int
    processes: int
    worst_event_coverage: float  # min over events of delivered fraction

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"reliability={self.reliability:.4f} "
            f"({self.pairs_delivered}/{self.pairs_total} pairs, "
            f"{self.events} events x {self.processes} processes, "
            f"worst event coverage {self.worst_event_coverage:.4f})"
        )


def measure_reliability(
    log: DeliveryLog,
    event_ids: Sequence[EventId],
    processes: Iterable[ProcessId],
) -> ReliabilityReport:
    """Estimate 1-β over the given notifications and processes.

    ``processes`` should be the correct member processes at the end of the
    run (crashed processes are excluded by the caller — the paper's
    guarantee is about surviving members).  The publisher counts like any
    other process; it delivered its own notification locally.
    """
    pids = list(processes)
    if not event_ids or not pids:
        raise ValueError("need at least one event and one process")
    pairs_total = len(event_ids) * len(pids)
    pairs_delivered = 0
    worst = 1.0
    for event_id in event_ids:
        deliverers = log.deliverers_of(event_id)
        covered = sum(1 for pid in pids if pid in deliverers)
        pairs_delivered += covered
        worst = min(worst, covered / len(pids))
    return ReliabilityReport(
        reliability=pairs_delivered / pairs_total,
        pairs_total=pairs_total,
        pairs_delivered=pairs_delivered,
        events=len(event_ids),
        processes=len(pids),
        worst_event_coverage=worst,
    )


def per_event_coverage(
    log: DeliveryLog,
    event_ids: Sequence[EventId],
    processes: Iterable[ProcessId],
) -> List[float]:
    """Delivered fraction per notification (the "bimodal" histogram view)."""
    pids = list(processes)
    if not pids:
        raise ValueError("need at least one process")
    coverage: List[float] = []
    for event_id in event_ids:
        deliverers = log.deliverers_of(event_id)
        coverage.append(sum(1 for pid in pids if pid in deliverers) / len(pids))
    return coverage


def coverage_histogram(
    coverages: Sequence[float], bins: int = 10
) -> List[int]:
    """Histogram of per-event coverage fractions over [0, 1].

    Gossip delivery is *bimodal* (the property Bimodal Multicast is named
    for, Sec. 2.3): an event either dies early (coverage near 0) or infects
    essentially everyone (near 1) — intermediate outcomes are rare.  The
    histogram makes that visible: mass concentrates in the first and last
    bins.
    """
    if bins < 1:
        raise ValueError("bins must be positive")
    histogram = [0] * bins
    for coverage in coverages:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError(f"coverage {coverage} outside [0, 1]")
        index = min(bins - 1, int(coverage * bins))
        histogram[index] += 1
    return histogram
