"""Plain-text reporting helpers for the benchmark harness.

Benches regenerate the paper's figures as printed series — an x column and
one y column per plotted line — so a reader can diff the run against the
paper's plots without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table with a header rule; numbers rendered compactly."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
                return f"{value:.3e}"
            return f"{value:.4f}".rstrip("0").rstrip(".")
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A figure rendered as text: one x column, one column per curve."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def merge_curves(curves: Mapping[str, Sequence[float]]) -> Dict[str, List[float]]:
    """Pad curves to equal length by extending their final value (an absorbed
    epidemic stays at its plateau)."""
    if not curves:
        return {}
    length = max(len(c) for c in curves.values())
    padded: Dict[str, List[float]] = {}
    for name, curve in curves.items():
        values = list(curve)
        while len(values) < length:
            values.append(values[-1] if values else 0.0)
        padded[name] = values
    return padded
