"""Protocol-overhead accounting.

Sec. 3.3: "The network thus experiences little fluctuations in terms of
overall load due to gossip messages, as long as the number of processes
inside Π and also T remain unchanged" — every process sends exactly F
protocol messages per period, regardless of application traffic.  This
module measures that: per-round message counts and element-size estimates
(via each message's ``size_estimate``), split by message kind, so benches
can compare lpbcast's single-phase overhead against pbcast's
digest+solicit+data traffic.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from ..core.ids import ProcessId
from ..core.message import Outgoing


@dataclass
class RoundTraffic:
    """Traffic observed in one round."""

    messages: int = 0
    elements: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, message: object) -> None:
        self.messages += 1
        kind = type(message).__name__
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        size = getattr(message, "size_estimate", None)
        self.elements += size() if callable(size) else 1


class BandwidthMeter:
    """Measures per-round protocol traffic in a round simulation.

    Wire it by wrapping nodes with :meth:`instrument` *before* adding them to
    the simulation; every outgoing message from ``on_tick`` and
    ``handle_message`` is counted against the current round.
    """

    def __init__(self) -> None:
        self._rounds: Dict[int, RoundTraffic] = defaultdict(RoundTraffic)
        self._per_sender: Dict[ProcessId, int] = defaultdict(int)
        self._current_round = 0

    # -- wiring ---------------------------------------------------------------
    def on_round(self, round_number: int, sim) -> None:
        """Register as a round *hook* so counting attributes to the round
        being executed."""
        self._current_round = round_number

    def instrument(self, node):
        """Wrap a node so its outgoing messages are counted."""
        meter = self
        original_tick = node.on_tick
        original_handle = node.handle_message

        def counted_tick(now: float) -> List[Outgoing]:
            out = original_tick(now)
            meter._count(node.pid, out)
            return out

        def counted_handle(sender, message, now: float) -> List[Outgoing]:
            out = original_handle(sender, message, now)
            meter._count(node.pid, out)
            return out

        node.on_tick = counted_tick
        node.handle_message = counted_handle
        return node

    def _count(self, sender: ProcessId, outgoings: List[Outgoing]) -> None:
        traffic = self._rounds[self._current_round]
        for out in outgoings:
            traffic.record(out.message)
            self._per_sender[sender] += 1

    # -- queries -----------------------------------------------------------------
    def round_traffic(self, round_number: int) -> RoundTraffic:
        return self._rounds.get(round_number, RoundTraffic())

    def rounds(self) -> List[int]:
        return sorted(self._rounds)

    def total_messages(self) -> int:
        return sum(t.messages for t in self._rounds.values())

    def total_elements(self) -> int:
        return sum(t.elements for t in self._rounds.values())

    def messages_by_kind(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for traffic in self._rounds.values():
            for kind, count in traffic.by_kind.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    def per_sender_totals(self) -> Dict[ProcessId, int]:
        return dict(self._per_sender)

    def load_stability(self) -> float:
        """Coefficient of variation of per-round message counts (ignoring
        the first and last rounds, which are edge-affected).  Small values
        back the Sec. 3.3 claim of a steady protocol load."""
        rounds = self.rounds()
        if len(rounds) < 4:
            raise ValueError("need at least 4 measured rounds")
        counts = [self._rounds[r].messages for r in rounds[1:-1]]
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 0.0
        var = sum((c - mean) ** 2 for c in counts) / len(counts)
        return (var ** 0.5) / mean
