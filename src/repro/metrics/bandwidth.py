"""Protocol-overhead accounting.

Sec. 3.3: "The network thus experiences little fluctuations in terms of
overall load due to gossip messages, as long as the number of processes
inside Π and also T remain unchanged" — every process sends exactly F
protocol messages per period, regardless of application traffic.  This
module measures that: per-round message counts, element-size estimates
(via each message's ``size_estimate``) and — when byte accounting is
enabled — exact encoded byte volumes, split by message kind, so benches
can compare lpbcast's single-phase overhead against pbcast's
digest+solicit+data traffic.

*Elements are not bytes.*  ``size_estimate`` counts carried elements
(event ids, subscriptions, …), a unit-less proxy that was historically the
only "bandwidth" number this repo reported.  Byte-accurate accounting sizes
every emission with the binary wire codec of :mod:`repro.wire` into
``sim.send_bytes``; it is opt-in (``meter.attach(sim, count_bytes=True)``
or setting ``telemetry.count_wire_bytes`` before the run) because the extra
counter series would otherwise shift pinned run fingerprints.

The meter is a *reader* over the engine-native telemetry layer
(:mod:`repro.telemetry`): every round engine counts its own emissions into
``sim.sends`` / ``sim.send_elements`` / ``sim.sends_by_sender``, so the
numbers are exact on the sharded engine too.  The previous implementation
wrapped ``on_tick``/``handle_message`` with closures; those wrappers did
not survive pickling nodes into shard workers, silently undercounting
every sharded run.  :meth:`BandwidthMeter.instrument` remains as a
back-compat no-op so existing call sites keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.ids import ProcessId
from ..telemetry import Telemetry


@dataclass
class RoundTraffic:
    """Traffic observed in one round."""

    messages: int = 0
    elements: int = 0
    #: Messages without a callable ``size_estimate``.  They contribute 0 to
    #: ``elements`` — counting them as 1 element each (the old behaviour)
    #: inflated element volume with control messages that carry no payload
    #: elements at all.
    unsized: int = 0
    #: Exact encoded bytes (binary wire codec) — 0 unless byte accounting
    #: was enabled for the run; kept separate from ``elements``, which is a
    #: unit-less element count, not a byte figure.
    wire_bytes: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, message: object) -> None:
        self.messages += 1
        kind = type(message).__name__
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        size = getattr(message, "size_estimate", None)
        if callable(size):
            self.elements += size()
        else:
            self.unsized += 1
        from ..wire import wire_bytes_of
        encoded = wire_bytes_of(message)
        if encoded > 0:
            self.wire_bytes += encoded


class BandwidthMeter:
    """Measures per-round protocol traffic in a round simulation.

    Wire it by registering :meth:`on_round` as a round hook (as before);
    the first invocation binds the meter to the engine's telemetry
    registry.  :meth:`attach` binds explicitly for use without hooks
    (e.g. reading a finished run, or an async runtime).
    """

    def __init__(self) -> None:
        self._telemetry: Optional[Telemetry] = None

    # -- wiring ---------------------------------------------------------------
    def on_round(self, round_number: int, sim) -> None:
        """Round hook (kept for API compatibility): binds the engine's
        telemetry registry on first call."""
        if self._telemetry is None:
            self.attach(sim)

    def attach(self, sim_or_telemetry,
               count_bytes: bool = False) -> "BandwidthMeter":
        """Bind to an engine (anything with a ``telemetry`` attribute) or
        directly to a :class:`~repro.telemetry.Telemetry` registry.

        ``count_bytes=True`` switches the registry's byte-accurate
        accounting on (see module docstring) — do this *before* the run;
        emissions recorded while it was off are not retro-sized.
        """
        telemetry = getattr(sim_or_telemetry, "telemetry", sim_or_telemetry)
        if not isinstance(telemetry, Telemetry):
            raise TypeError(f"cannot attach to {sim_or_telemetry!r}: "
                            f"no telemetry registry found")
        self._telemetry = telemetry
        if count_bytes:
            telemetry.count_wire_bytes = True
        return self

    def instrument(self, node):
        """Back-compat no-op: engines count their own emissions now, so
        there is nothing to wrap (and nothing to lose when a node is
        pickled into a shard worker)."""
        return node

    # -- queries -----------------------------------------------------------------
    def round_traffic(self, round_number: int) -> RoundTraffic:
        traffic = RoundTraffic()
        telemetry = self._telemetry
        if telemetry is None:
            return traffic
        for key, value in telemetry.counter_series("sim.sends").items():
            labels = dict(key)
            if labels.get("round") != round_number:
                continue
            traffic.messages += value
            kind = str(labels.get("kind", "?"))
            traffic.by_kind[kind] = traffic.by_kind.get(kind, 0) + value
        traffic.elements = telemetry.counter_value(
            "sim.send_elements", round=round_number
        )
        traffic.unsized = telemetry.counter_value(
            "sim.sends_unsized", round=round_number
        )
        traffic.wire_bytes = telemetry.counter_value(
            "sim.send_bytes", round=round_number
        )
        return traffic

    def rounds(self) -> List[int]:
        if self._telemetry is None:
            return []
        return self._telemetry.label_values("sim.sends", "round")

    def total_messages(self) -> int:
        if self._telemetry is None:
            return 0
        return self._telemetry.counter_total("sim.sends")

    def total_elements(self) -> int:
        if self._telemetry is None:
            return 0
        return self._telemetry.counter_total("sim.send_elements")

    def total_unsized(self) -> int:
        if self._telemetry is None:
            return 0
        return self._telemetry.counter_total("sim.sends_unsized")

    def total_wire_bytes(self) -> int:
        """Exact encoded bytes across the run — 0 unless byte accounting
        was enabled (``attach(..., count_bytes=True)``) before running."""
        if self._telemetry is None:
            return 0
        return self._telemetry.counter_total("sim.send_bytes")

    def messages_by_kind(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        if self._telemetry is None:
            return totals
        for key, value in self._telemetry.counter_series("sim.sends").items():
            kind = str(dict(key).get("kind", "?"))
            totals[kind] = totals.get(kind, 0) + value
        return totals

    def per_sender_totals(self) -> Dict[ProcessId, int]:
        totals: Dict[ProcessId, int] = {}
        if self._telemetry is None:
            return totals
        series = self._telemetry.counter_series("sim.sends_by_sender")
        for key, value in series.items():
            totals[dict(key)["src"]] = value
        return totals

    def load_stability(self) -> float:
        """Coefficient of variation of per-round message counts (ignoring
        the first and last rounds, which are edge-affected).  Small values
        back the Sec. 3.3 claim of a steady protocol load."""
        rounds = self.rounds()
        if len(rounds) < 4:
            raise ValueError("need at least 4 measured rounds")
        counts = [self.round_traffic(r).messages for r in rounds[1:-1]]
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 0.0
        var = sum((c - mean) ** 2 for c in counts) / len(counts)
        return (var ** 0.5) / mean
