"""The expected-infection recursion of Appendix A.

For ``i`` infected processes, the newly infected count Δ(i) is binomial with
parameters (n-i, 1-q^i), so

    E(j(i)) = i + (n-i)(1-q^i) = n - (n-i) q^i.

Iterating this recursion (from s_0 = 1) approximates the expected infection
curve without propagating the full Markov chain — the paper notes the
obtained values "might be non-integer, and thus must be rounded off".  The
fractional fixed point is also what Fig. 3(b) effectively plots: the number
of rounds until the expectation crosses 99% of n, which grows
logarithmically in n (Sec. 4.3, citing Bailey's theory of epidemics).
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.network import PAPER_CRASH_RATE, PAPER_LOSS_RATE
from .markov import infection_probability


def expected_infected_curve(n: int, p: float, rounds: int) -> List[float]:
    """E[s_r] for r = 0..rounds via the Appendix A recursion (un-rounded)."""
    if n < 1:
        raise ValueError("need at least one process")
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    q = 1.0 - p
    curve = [1.0]
    value = 1.0
    for _ in range(rounds):
        value = n - (n - value) * q**value
        curve.append(value)
    return curve


def expected_infected_curve_rounded(n: int, p: float, rounds: int) -> List[int]:
    """The recursion with per-step rounding, as the appendix prescribes."""
    q = 1.0 - p
    curve = [1]
    value = 1
    for _ in range(rounds):
        value = int(round(n - (n - value) * q**value))
        curve.append(value)
    return curve


def expected_rounds_to_fraction(
    n: int,
    fanout: int,
    loss_rate: float = PAPER_LOSS_RATE,
    crash_rate: float = PAPER_CRASH_RATE,
    fraction: float = 0.99,
    max_rounds: int = 10_000,
) -> Optional[float]:
    """Rounds for the expected infection to reach ``fraction``·n.

    Returns a *fractional* round count (linear interpolation between the two
    bracketing integer rounds), which reproduces the smooth logarithmic curve
    of Fig. 3(b).  ``None`` if the target is never reached (sub-critical
    parameters).
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    p = infection_probability(n, fanout, loss_rate, crash_rate)
    q = 1.0 - p
    target = fraction * n
    previous = 1.0
    if previous >= target:
        return 0.0
    for r in range(1, max_rounds + 1):
        value = n - (n - previous) * q**previous
        if value >= target:
            if value == previous:
                return float(r)
            return (r - 1) + (target - previous) / (value - previous)
        if value - previous < 1e-12:
            return None  # stalled below the target
        previous = value
    return None
