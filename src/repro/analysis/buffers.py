"""Analytical model of the buffer-bound reliability trade-off (Fig. 6(b)).

The paper measures the strong dependence of reliability on ``|eventIds|m``
but does not model it ("a more precise expression of the delivery
reliability would thus furthermore depend on l, n, and |events|m ...  Such
parameters are hardly ever taken into consideration during the analysis of
broadcast algorithms", Sec. 5.2).  This module supplies the first-order
model the measurements suggest:

* under a system-wide publication rate of ``λ`` fresh notifications per
  round, every delivery pushes one id into each holder's bounded FIFO
  ``eventIds``, so an id is evicted roughly ``B/λ`` rounds after delivery
  (``B = |eventIds|m``);
* an event stops spreading once its id has been purged everywhere, so a
  process is reached only if its infection latency is below that survival
  horizon;
* hence  reliability ≈ P(latency ≤ B/λ),  with the latency law taken from
  the Eqs. 2–3 chain (:class:`~repro.analysis.latency.LatencyAnalysis`).

The model is deliberately *conservative*: it ignores that every newly
infected process restarts the id's survival clock in its own buffer (the
wavefront keeps the id alive at the epidemic's edge), so it lower-bounds
measured reliability — while reproducing the curve's shape, its knee
position, and both extremes.  ``benchmarks/bench_buffer_model.py`` compares
it against steady-state measurement.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..sim.network import PAPER_CRASH_RATE, PAPER_LOSS_RATE
from .latency import LatencyAnalysis


def id_survival_rounds(event_ids_max: int, publish_rate: float) -> float:
    """Rounds a delivered id survives in a bounded FIFO ``eventIds`` buffer
    under ``publish_rate`` fresh notifications per round."""
    if event_ids_max < 0:
        raise ValueError("event_ids_max must be non-negative")
    if publish_rate <= 0:
        raise ValueError("publish_rate must be positive")
    return event_ids_max / publish_rate


def predicted_reliability(
    n: int,
    fanout: int,
    event_ids_max: int,
    publish_rate: float,
    loss_rate: float = PAPER_LOSS_RATE,
    crash_rate: float = PAPER_CRASH_RATE,
    horizon: int = 40,
) -> float:
    """First-order 1-β prediction for a given ``|eventIds|m`` and load.

    Interpolates the latency CDF linearly between integer rounds, since the
    survival horizon ``B/λ`` is generally fractional.
    """
    analysis = LatencyAnalysis(n, fanout, loss_rate, crash_rate, horizon)
    survival = id_survival_rounds(event_ids_max, publish_rate)
    if survival >= horizon:
        return analysis.infected_by(horizon)
    lower = math.floor(survival)
    upper = lower + 1
    fraction = survival - lower
    low_value = analysis.infected_by(lower)
    high_value = analysis.infected_by(upper)
    return low_value + fraction * (high_value - low_value)


def predicted_reliability_curve(
    n: int,
    fanout: int,
    buffer_sizes: Sequence[int],
    publish_rate: float,
    loss_rate: float = PAPER_LOSS_RATE,
    crash_rate: float = PAPER_CRASH_RATE,
) -> List[Tuple[int, float]]:
    """(|eventIds|m, predicted 1-β) pairs — the analytical Fig. 6(b)."""
    return [
        (size, predicted_reliability(n, fanout, size, publish_rate,
                                     loss_rate, crash_rate))
        for size in buffer_sizes
    ]


def required_buffer_size(
    n: int,
    fanout: int,
    publish_rate: float,
    target_reliability: float = 0.99,
    loss_rate: float = PAPER_LOSS_RATE,
    crash_rate: float = PAPER_CRASH_RATE,
    size_cap: int = 100_000,
) -> int:
    """Smallest ``|eventIds|m`` predicted to reach the target reliability —
    the practical sizing question Fig. 6(b) raises.  The latency quantile
    makes this closed-form: B = λ · (rounds for the target fraction)."""
    if not 0 < target_reliability <= 1:
        raise ValueError("target_reliability must be in (0, 1]")
    analysis = LatencyAnalysis(n, fanout, loss_rate, crash_rate)
    rounds = analysis.latency_quantile(target_reliability)
    if rounds is None:
        raise ValueError(
            "target unreachable: the epidemic never infects that fraction"
        )
    size = math.ceil(rounds * publish_rate)
    if size > size_cap:
        raise ValueError(f"required buffer {size} exceeds cap {size_cap}")
    return size
