"""The paper's stochastic analysis (Sec. 4 and Appendix A).

* Eq. 1 — :func:`~repro.analysis.markov.infection_probability` (independent of l).
* Eqs. 2–3 — :class:`~repro.analysis.markov.InfectionMarkovChain`.
* Appendix A — :func:`~repro.analysis.expectation.expected_infected_curve`
  and :func:`~repro.analysis.expectation.expected_rounds_to_fraction`.
* Eq. 4 — :func:`~repro.analysis.partition.psi` (log-space).
* Eq. 5 — :func:`~repro.analysis.partition.phi` and
  :func:`~repro.analysis.partition.rounds_until_partition`.
"""

from .expectation import (
    expected_infected_curve,
    expected_infected_curve_rounded,
    expected_rounds_to_fraction,
)
from .buffers import (
    id_survival_rounds,
    predicted_reliability,
    predicted_reliability_curve,
    required_buffer_size,
)
from .latency import LatencyAnalysis
from .markov import InfectionMarkovChain, infection_probability
from .montecarlo import empirical_partition_rate, sample_partition
from .partition import (
    log_comb,
    log_psi,
    partition_probability_per_round,
    phi,
    psi,
    psi_curve,
    rounds_until_partition,
)

__all__ = [
    "expected_infected_curve",
    "expected_infected_curve_rounded",
    "empirical_partition_rate",
    "expected_rounds_to_fraction",
    "id_survival_rounds",
    "predicted_reliability",
    "predicted_reliability_curve",
    "required_buffer_size",
    "infection_probability",
    "InfectionMarkovChain",
    "LatencyAnalysis",
    "sample_partition",
    "log_comb",
    "log_psi",
    "partition_probability_per_round",
    "phi",
    "psi",
    "psi_curve",
    "rounds_until_partition",
]
