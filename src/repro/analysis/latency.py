"""Per-process delivery-latency analysis, derived from the Markov chain.

The chain of Eqs. 2–3 gives the law of the *number* of infected processes;
by symmetry (views are uniform, so all susceptible processes are
exchangeable), a given process's probability of being infected by round r is

    P(infected by r) = (E[s_r] - 1) / (n - 1)

(the publisher is infected at round 0 and excluded).  From that cumulative
curve we obtain the latency distribution and its summary statistics — the
analytical counterpart of the 1-β-vs-latency trade-off the measurements
probe.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.network import PAPER_CRASH_RATE, PAPER_LOSS_RATE
from .markov import InfectionMarkovChain


class LatencyAnalysis:
    """Delivery-latency distribution of a random non-publisher process."""

    def __init__(
        self,
        n: int,
        fanout: int,
        loss_rate: float = PAPER_LOSS_RATE,
        crash_rate: float = PAPER_CRASH_RATE,
        horizon: int = 30,
    ) -> None:
        if horizon < 1:
            raise ValueError("horizon must be positive")
        self.n = n
        self.horizon = horizon
        chain = InfectionMarkovChain(n, fanout, loss_rate, crash_rate)
        expected = chain.expected_curve(horizon)
        # Cumulative infection probability of a given (non-publisher)
        # process.  A running max irons out ~1e-13 numeric noise from the
        # chain's mass cutoff: the true quantity is a CDF.
        self.cumulative: List[float] = []
        running = 0.0
        for value in expected:
            running = max(running, max(0.0, min(1.0, (value - 1.0) / (n - 1))))
            self.cumulative.append(running)

    def infected_by(self, round_number: int) -> float:
        """P(a given process has delivered by the end of ``round_number``)."""
        if round_number < 0:
            return 0.0
        index = min(round_number, self.horizon)
        return self.cumulative[index]

    def pmf(self) -> List[float]:
        """P(delivery happens exactly in round r), r = 0..horizon."""
        pmf = [self.cumulative[0]]
        for r in range(1, self.horizon + 1):
            pmf.append(max(0.0, self.cumulative[r] - self.cumulative[r - 1]))
        return pmf

    def expected_latency(self) -> float:
        """Mean delivery round of a process that does get the event
        (conditioned on delivery within the horizon)."""
        pmf = self.pmf()
        mass = sum(pmf)
        if mass <= 0.0:
            raise ValueError("no delivery mass within the horizon")
        return sum(r * p for r, p in enumerate(pmf)) / mass

    def latency_quantile(self, q: float) -> Optional[int]:
        """Smallest round by which a given process has delivered with
        probability at least ``q`` (None if not reached in the horizon)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        for r, value in enumerate(self.cumulative):
            if value >= q:
                return r
        return None
