"""Monte-Carlo validation of the partitioning analysis (Eq. 4).

At the paper's settings Ψ is ~1e-17 — unobservable empirically.  But the
formula can be validated where it predicts *observable* rates: tiny systems
with minimal views (e.g. n = 8, l = 1) partition with probability around
1e-2 per draw.  :func:`empirical_partition_rate` samples fresh uniform view
assignments and counts partitions in the paper's sense (Sec. 4.4: mutually
oblivious subsets — weak connectivity of the knows-about graph), so the
per-round bound ΣΨ can be checked against reality.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from ..core.ids import ProcessId
from .partition import partition_probability_per_round


def _is_partitioned(views) -> bool:
    """Weak-connectivity check on a dict pid -> iterable of view members
    (dependency-free union-find; cheaper than building a networkx graph in
    a hot Monte-Carlo loop)."""
    parent = {pid: pid for pid in views}

    def find(x: ProcessId) -> ProcessId:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: ProcessId, b: ProcessId) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for pid, view in views.items():
        for target in view:
            union(pid, target)
    roots = {find(pid) for pid in views}
    return len(roots) > 1


def sample_partition(n: int, l: int, rng: random.Random) -> bool:
    """Draw one uniform view assignment; return whether it is partitioned."""
    pids = list(range(n))
    views = {}
    for pid in pids:
        others = [p for p in pids if p != pid]
        views[pid] = rng.sample(others, min(l, len(others)))
    return _is_partitioned(views)


def empirical_partition_rate(
    n: int,
    l: int,
    trials: int = 10_000,
    rng: Optional[random.Random] = None,
) -> Tuple[float, float]:
    """(empirical rate, analytical per-round bound ΣΨ) for comparison.

    The bound counts partitions via specific subset sizes and over-counts
    multi-way splits, so ``empirical <= bound`` need not hold exactly — but
    the two should agree in order of magnitude wherever the rate is
    observable, which is what the validation test asserts.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    rng = rng if rng is not None else random.Random()
    hits = sum(1 for _ in range(trials) if sample_partition(n, l, rng))
    return hits / trials, partition_probability_per_round(n, l)
