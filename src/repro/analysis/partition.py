"""Partitioning analysis of Sec. 4.4 (Eqs. 4–5).

Equation 4 upper-bounds the probability that a specific-size partition forms
in one round of freshly drawn uniform views:

    Ψ(i, n, l) = C(n,i) · [C(i-1,l)/C(n-1,l)]^i · [C(n-i-1,l)/C(n-1,l)]^(n-i)

— choose the i members of the partition; each of the i must draw its entire
view inside the partition (C(i-1,l)/C(n-1,l)); each of the n-i others must
draw its entire view outside (C(n-i-1,l)/C(n-1,l)).  Values are astronomically
small (~1e-14 around the paper's Fig. 4 settings), so everything is computed
in log space with ``gammaln``.

Equation 5 extends the bound over time: under the memoryless-views model the
probability of *no* partition up to round r is

    φ(n, l, r) = (1 - Σ_{l+1 <= i <= n/2} Ψ(i,n,l))^r  ≈  1 - r·ΣΨ.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from scipy.special import gammaln


def log_comb(n: int, k: int) -> float:
    """log C(n, k); -inf when the coefficient is zero."""
    if k < 0 or k > n or n < 0:
        return -math.inf
    return float(gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1))


def log_psi(i: int, n: int, l: int) -> float:
    """log Ψ(i, n, l); -inf when a partition of size i is impossible."""
    if n < 2 or l < 0:
        raise ValueError("need n >= 2 and l >= 0")
    if i < l + 1 or i > n:
        return -math.inf  # members of the partition could not fill a view inside
    log_denominator = log_comb(n - 1, l)
    inside = log_comb(i - 1, l) - log_denominator
    if n - i > 0:
        outside = log_comb(n - i - 1, l) - log_denominator
        if outside == -math.inf:
            return -math.inf  # the complement cannot fill its views outside
    else:
        outside = 0.0
    return log_comb(n, i) + i * inside + (n - i) * outside


def psi(i: int, n: int, l: int) -> float:
    """Equation 4: probability bound for a partition of exactly size i."""
    return math.exp(log_psi(i, n, l))


def psi_curve(n: int, l: int, sizes: Optional[List[int]] = None) -> List[Tuple[int, float]]:
    """(i, Ψ(i,n,l)) pairs — the curves of Fig. 4 (paper: l=3, n∈{50,75,125})."""
    if sizes is None:
        sizes = list(range(l + 1, n // 2 + 1))
    return [(i, psi(i, n, l)) for i in sizes]


def partition_probability_per_round(n: int, l: int) -> float:
    """Σ_{l+1 <= i <= n/2} Ψ(i,n,l): any-partition probability in one round."""
    total = 0.0
    for i in range(l + 1, n // 2 + 1):
        total += psi(i, n, l)
    return total


def phi(n: int, l: int, rounds: float, exact: bool = True) -> float:
    """Equation 5: probability of no partitioning up to round ``rounds``.

    ``exact=True`` evaluates (1-ΣΨ)^r (stably via expm1/log1p); ``exact=False``
    uses the paper's linearization 1 - r·ΣΨ (clamped at 0).
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    per_round = partition_probability_per_round(n, l)
    if per_round >= 1.0:
        return 0.0
    if exact:
        return math.exp(rounds * math.log1p(-per_round))
    return max(0.0, 1.0 - rounds * per_round)


def rounds_until_partition(n: int, l: int, probability: float = 0.9) -> float:
    """Rounds r such that a partition has occurred with the given probability:
    solves (1-ΣΨ)^r = 1 - probability.

    Reproduces the paper's Sec. 4.4 observation: "It takes ≈ 10^12 rounds to
    end up with a partitioned system with a probability of 0.9 with n = 50
    and l = 3."
    """
    if not 0 < probability < 1:
        raise ValueError("probability must be in (0, 1)")
    per_round = partition_probability_per_round(n, l)
    if per_round <= 0.0:
        return math.inf
    if per_round >= 1.0:
        return 0.0
    return math.log(1.0 - probability) / math.log1p(-per_round)
