"""The infection Markov chain of Sec. 4.2 (Eqs. 1–3).

Equation 1 lower-bounds the probability that one gossip message infects a
given susceptible process:

    p = [1 - C(n-2,l)/C(n-1,l)] * (F/l) * (1-ε) * (1-τ)
      = (l/(n-1)) * (F/l) * (1-ε) * (1-τ)
      = (F/(n-1)) * (1-ε) * (1-τ)

— a conjunction of "the gossiper knows the target" (l/(n-1)), "the target is
chosen among the F" (F/l), "the message is not lost" (1-ε), "the target does
not crash" (1-τ).  Under the uniform-view assumption the view size ``l``
cancels: this independence of ``l`` is the paper's central analytical claim.

Equation 2 then gives the round-to-round transition: with ``i`` infected
processes and ``q = 1 - p``, each of the ``n - i`` susceptible processes is
infected independently with probability ``1 - q^i``, so

    p_ij = C(n-i, j-i) (1-q^i)^{j-i} q^{i(n-j)}        for j >= i

i.e. the number of *new* infections is Binomial(n-i, 1-q^i).  Equation 3
propagates the distribution of ``s_r`` from ``s_0 = 1``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy import stats as scipy_stats

from ..sim.network import PAPER_CRASH_RATE, PAPER_LOSS_RATE


def infection_probability(
    n: int,
    fanout: int,
    loss_rate: float = PAPER_LOSS_RATE,
    crash_rate: float = PAPER_CRASH_RATE,
) -> float:
    """Equation 1: per-message infection probability ``p`` (independent of l)."""
    if n < 2:
        raise ValueError("need at least two processes")
    if fanout < 1:
        raise ValueError("fanout must be at least 1")
    if not 0 <= loss_rate < 1:
        raise ValueError("loss_rate (epsilon) must be in [0, 1)")
    if not 0 <= crash_rate < 1:
        raise ValueError("crash_rate (tau) must be in [0, 1)")
    return (fanout / (n - 1)) * (1.0 - loss_rate) * (1.0 - crash_rate)


class InfectionMarkovChain:
    """Distribution of the number of infected processes per round (Eqs. 2–3)."""

    def __init__(
        self,
        n: int,
        fanout: int,
        loss_rate: float = PAPER_LOSS_RATE,
        crash_rate: float = PAPER_CRASH_RATE,
        mass_cutoff: float = 1e-14,
    ) -> None:
        self.n = n
        self.fanout = fanout
        self.p = infection_probability(n, fanout, loss_rate, crash_rate)
        self.q = 1.0 - self.p
        self.mass_cutoff = mass_cutoff

    # -- one-step dynamics ---------------------------------------------------
    def transition_probability(self, i: int, j: int) -> float:
        """Equation 2: P(s_{r+1} = j | s_r = i)."""
        if not 1 <= i <= self.n or j < i or j > self.n:
            return 0.0
        infect_prob = 1.0 - self.q**i
        return float(scipy_stats.binom.pmf(j - i, self.n - i, infect_prob))

    def step(self, distribution: np.ndarray) -> np.ndarray:
        """Propagate a distribution over {0..n} one round forward."""
        n = self.n
        result = np.zeros(n + 1)
        result[0] = distribution[0]  # an extinct epidemic stays extinct
        for i in range(1, n + 1):
            mass = distribution[i]
            if mass <= self.mass_cutoff:
                continue
            susceptible = n - i
            if susceptible == 0:
                result[n] += mass
                continue
            infect_prob = 1.0 - self.q**i
            newly = np.arange(susceptible + 1)
            pmf = scipy_stats.binom.pmf(newly, susceptible, infect_prob)
            result[i : n + 1] += mass * pmf
        return result

    # -- multi-round queries ---------------------------------------------------
    def initial_distribution(self) -> np.ndarray:
        """Equation 3 base case: P(s_0 = 1) = 1."""
        distribution = np.zeros(self.n + 1)
        distribution[1] = 1.0
        return distribution

    def round_distributions(self, rounds: int) -> np.ndarray:
        """Array of shape (rounds+1, n+1): row r is the law of s_r."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        history = np.zeros((rounds + 1, self.n + 1))
        history[0] = self.initial_distribution()
        for r in range(rounds):
            history[r + 1] = self.step(history[r])
        return history

    def expected_curve(self, rounds: int) -> List[float]:
        """E[s_r] for r = 0..rounds — the curves plotted in Figs. 2 and 3(a)."""
        history = self.round_distributions(rounds)
        support = np.arange(self.n + 1)
        return [float(row @ support) for row in history]

    def rounds_to_fraction(
        self, fraction: float = 0.99, max_rounds: int = 100
    ) -> Optional[int]:
        """First round r with E[s_r] >= fraction·n (Fig. 3(b) uses 0.99)."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        target = fraction * self.n
        distribution = self.initial_distribution()
        support = np.arange(self.n + 1)
        for r in range(max_rounds + 1):
            if float(distribution @ support) >= target:
                return r
            distribution = self.step(distribution)
        return None

    def atomicity_probability(self, rounds: int) -> float:
        """P(s_rounds = n): probability every process was infected."""
        history = self.round_distributions(rounds)
        return float(history[-1][self.n])
