"""Parameter tuning from the paper's analysis (Sec. 7).

"For the time being, the analytical approach we have given here can be used
as a tool to tune the algorithm for a given expected maximum system size."

This module is that tool.  Given an expected maximum system size and target
guarantees, it inverts the paper's formulas:

* :func:`recommend_fanout` — smallest F whose Markov chain (Eqs. 2–3)
  reaches the target infected fraction within a round budget;
* :func:`recommend_view_size` — smallest l ≥ F for which the Eq. 5 horizon
  (rounds until partitioning becomes likely) exceeds the system's intended
  lifetime;
* :func:`recommend_config` — both, packaged as a ready
  :class:`~repro.core.config.LpbcastConfig`.

The paper leaves "a precise analytical expression to determine the ideal
view size l" as an open problem; this tool does the practical thing instead:
numeric search over the exact bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.config import LpbcastConfig
from ..sim.network import PAPER_CRASH_RATE, PAPER_LOSS_RATE
from .expectation import expected_rounds_to_fraction
from .partition import rounds_until_partition


def recommend_fanout(
    n: int,
    target_fraction: float = 0.99,
    max_rounds: float = 8.0,
    loss_rate: float = PAPER_LOSS_RATE,
    crash_rate: float = PAPER_CRASH_RATE,
    fanout_cap: int = 32,
) -> int:
    """Smallest fanout infecting ``target_fraction`` of n within the budget.

    Uses the Appendix A expectation recursion.  Raises ``ValueError`` when no
    fanout up to ``fanout_cap`` meets the budget (the budget is too tight
    for any sane fanout — recall Fig. 2's diminishing returns).
    """
    if max_rounds <= 0:
        raise ValueError("max_rounds must be positive")
    for fanout in range(1, fanout_cap + 1):
        rounds = expected_rounds_to_fraction(
            n, fanout, loss_rate, crash_rate, fraction=target_fraction
        )
        if rounds is not None and rounds <= max_rounds:
            return fanout
    raise ValueError(
        f"no fanout <= {fanout_cap} infects {target_fraction:.0%} of "
        f"n={n} within {max_rounds} rounds"
    )


def recommend_view_size(
    n: int,
    fanout: int,
    lifetime_rounds: float = 1e9,
    partition_probability: float = 0.01,
    view_cap: int = 256,
    floor: int = 0,
) -> int:
    """Smallest l (≥ F and ≥ ``floor``) keeping the partition risk below the
    target.

    Finds the smallest ``l`` such that the Eq. 5 horizon — the number of
    rounds after which a partition has occurred with probability
    ``partition_probability`` — exceeds ``lifetime_rounds``.

    ``floor`` expresses the *practical* lower bound beyond the paper's hard
    ``F <= l`` constraint: the simulations (Fig. 5(b) / Sec. 6.1) show that
    views at or barely above F are correlated enough to slow dissemination
    measurably, so :func:`recommend_config` passes ``floor = 2F`` by
    default.
    """
    if lifetime_rounds <= 0:
        raise ValueError("lifetime_rounds must be positive")
    if not 0 < partition_probability < 1:
        raise ValueError("partition_probability must be in (0, 1)")
    for l in range(max(1, fanout, floor), view_cap + 1):
        horizon = rounds_until_partition(n, l, partition_probability)
        if horizon >= lifetime_rounds:
            return l
    raise ValueError(
        f"no view size <= {view_cap} meets the partition target for n={n}"
    )


@dataclass(frozen=True)
class TuningReport:
    """The recommendation and the guarantees it was derived from."""

    n: int
    fanout: int
    view_size: int
    expected_rounds_to_target: float
    partition_horizon_rounds: float
    config: LpbcastConfig

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n}: F={self.fanout}, l={self.view_size} "
            f"(99% infection in ~{self.expected_rounds_to_target:.1f} rounds, "
            f"partition horizon ~{self.partition_horizon_rounds:.2e} rounds)"
        )


def recommend_config(
    n: int,
    target_fraction: float = 0.99,
    max_rounds: float = 8.0,
    lifetime_rounds: float = 1e9,
    partition_probability: float = 0.01,
    loss_rate: float = PAPER_LOSS_RATE,
    crash_rate: float = PAPER_CRASH_RATE,
    base: Optional[LpbcastConfig] = None,
    view_slack_factor: float = 2.0,
) -> TuningReport:
    """Tune (F, l) for an expected maximum system size ``n``.

    The remaining buffer bounds are taken from ``base`` (default:
    :class:`LpbcastConfig` defaults), with ``view_max`` and ``fanout``
    replaced by the recommendation.  ``view_slack_factor`` sets the
    practical view floor ``l >= factor*F`` compensating the view-correlation
    slowdown the paper observed for minimal views (Fig. 5(b)).
    """
    if view_slack_factor < 1.0:
        raise ValueError("view_slack_factor must be >= 1")
    fanout = recommend_fanout(n, target_fraction, max_rounds,
                              loss_rate, crash_rate)
    view_size = recommend_view_size(
        n, fanout, lifetime_rounds, partition_probability,
        floor=int(round(view_slack_factor * fanout)),
    )
    base_config = base if base is not None else LpbcastConfig()
    config = base_config.with_overrides(fanout=fanout, view_max=view_size)
    rounds = expected_rounds_to_fraction(
        n, fanout, loss_rate, crash_rate, fraction=target_fraction
    )
    horizon = rounds_until_partition(n, config.view_max, partition_probability)
    return TuningReport(
        n=n,
        fanout=fanout,
        view_size=config.view_max,
        expected_rounds_to_target=rounds if rounds is not None else float("inf"),
        partition_horizon_rounds=horizon,
        config=config,
    )
