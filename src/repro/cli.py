"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run one broadcast through a system and print the infection curve.
``figure {2,3a,3b,4,5a,5b,6a,6b,7a,7b}``
    Regenerate a paper figure's series as a text table.
``tune N``
    Recommend (F, l) for an expected maximum system size (Sec. 7's
    "tool to tune the algorithm").
``analyze N``
    Print the analytical quantities (Eqs. 1-5) for a system size.
``chaos``
    Soak seeded scenarios under random fault plans with live invariant
    monitoring; exits non-zero if any safety invariant was violated.
``trace``
    Run a fixed-seed simulation with engine-native telemetry (tracing on)
    and print the counter/profile/trace summary; ``--jsonl``/``--prom``
    export the registry, ``--validate`` checks the exports against the
    documented schema (the CI telemetry-smoke job runs exactly this).
``fuzz``
    Deterministic-simulation fuzzing: generate seeded scenarios, judge each
    with the invariant + differential-engine oracle, shrink failures and
    write JSON repro artifacts.  ``--replay case.json`` re-executes an
    artifact and requires bit-identical reproduction; ``--self-test``
    plants known bugs and asserts the fuzzer finds and shrinks them.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    InfectionMarkovChain,
    expected_rounds_to_fraction,
    infection_probability,
    partition_probability_per_round,
    rounds_until_partition,
)
from .analysis.tuning import recommend_config
from .metrics import format_series, format_table, merge_curves


def _cmd_demo(args: argparse.Namespace) -> int:
    from .experiments import lpbcast_infection_curve

    curve = lpbcast_infection_curve(
        args.n, l=args.view, fanout=args.fanout, seed=args.seed,
        rounds=args.rounds, loss_rate=args.loss,
        engine=args.engine, shards=args.shards,
    )
    engine_label = args.engine
    if args.engine == "sharded":
        from .sim import DEFAULT_SHARDS
        engine_label = f"sharded/{args.shards or DEFAULT_SHARDS}"
    print(f"lpbcast demo: n={args.n}, l={args.view}, F={args.fanout}, "
          f"loss={args.loss}, seed={args.seed}, engine={engine_label}")
    print("round  infected")
    for r, count in enumerate(curve):
        print(f"{r:5d}  {count:6d}  {'#' * (60 * count // args.n)}")
    return 0 if curve[-1] == args.n else 1


def _cmd_figure(args: argparse.Namespace) -> int:
    from . import experiments as exp

    seeds = range(args.seeds)
    fig = args.id
    if fig == "2":
        series = exp.fig2_series()
        print(format_series("round", list(range(len(next(iter(series.values()))))),
                            series, title="Figure 2 (analysis)"))
    elif fig == "3a":
        series = exp.fig3a_series()
        print(format_series("round", list(range(11)), series,
                            title="Figure 3(a) (analysis)"))
    elif fig == "3b":
        sizes, rounds = exp.fig3b_series()
        print(format_table(["n", "rounds to 99%"], list(zip(sizes, rounds)),
                           title="Figure 3(b) (analysis)"))
    elif fig == "4":
        curves = exp.fig4_series()
        rows = []
        sizes = [i for i, _ in curves["n=50"]]
        by_n = {name: dict(points) for name, points in curves.items()}
        for i in sizes:
            rows.append([i] + [by_n[f"n={n}"].get(i, 0.0) for n in (50, 75, 125)])
        print(format_table(["i", "n=50", "n=75", "n=125"], rows,
                           title="Figure 4 (analysis)"))
    elif fig == "5a":
        series = merge_curves(exp.fig5a_series(seeds=seeds))
        print(format_series("round", list(range(11)), series,
                            title="Figure 5(a) (analysis vs simulation)"))
    elif fig == "5b":
        series = merge_curves(exp.fig5b_series(seeds=seeds))
        print(format_series("round", list(range(9)), series,
                            title="Figure 5(b) (simulation)"))
    elif fig == "6a":
        l_values, reliabilities = exp.fig6a_series(seeds=seeds)
        print(format_table(["l", "reliability"],
                           list(zip(l_values, reliabilities)),
                           title="Figure 6(a) (measurement substitute)"))
    elif fig == "6b":
        sizes, reliabilities = exp.fig6b_series(seeds=seeds)
        print(format_table(["|eventIds|m", "reliability"],
                           list(zip(sizes, reliabilities)),
                           title="Figure 6(b) (measurement substitute)"))
    elif fig == "7a":
        series = merge_curves(exp.fig7a_series(seeds=seeds))
        print(format_series("round", list(range(8)), series,
                            title="Figure 7(a) (simulation)"))
    elif fig == "7b":
        l_values, reliabilities = exp.fig7b_series(seeds=seeds)
        print(format_table(["l", "reliability"],
                           list(zip(l_values, reliabilities)),
                           title="Figure 7(b) (simulation)"))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(fig)
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    report = recommend_config(
        args.n,
        max_rounds=args.max_rounds,
        lifetime_rounds=args.lifetime,
        partition_probability=args.partition_probability,
    )
    print(report)
    rows = [
        ["fanout F", report.fanout],
        ["view size l", report.view_size],
        ["E[rounds to 99%]", report.expected_rounds_to_target],
        ["partition horizon (rounds)", report.partition_horizon_rounds],
    ]
    if args.publish_rate is not None:
        from .analysis import required_buffer_size

        rows.append([
            f"|eventIds|m for 99% at {args.publish_rate}/round",
            required_buffer_size(args.n, report.fanout, args.publish_rate,
                                 target_reliability=0.99),
        ])
    print(format_table(
        ["parameter", "value"], rows,
        title=f"Recommended lpbcast configuration for n={args.n}",
    ))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    n, fanout = args.n, args.fanout
    p = infection_probability(n, fanout)
    rounds99 = expected_rounds_to_fraction(n, fanout)
    chain = InfectionMarkovChain(n, fanout)
    rows = [
        ["p (Eq. 1)", p],
        ["E[rounds to 99%] (Appendix A)", rounds99],
        ["P(all infected by round 8) (Eqs. 2-3)",
         chain.atomicity_probability(8)],
        [f"per-round partition prob., l={args.view} (Eq. 4)",
         partition_probability_per_round(n, args.view)],
        [f"rounds to partition w.p. 0.9, l={args.view} (Eq. 5)",
         rounds_until_partition(n, args.view, 0.9)],
    ]
    print(format_table(["quantity", "value"], rows,
                       title=f"lpbcast analysis: n={n}, F={fanout}"))
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from .analysis import LatencyAnalysis

    analysis = LatencyAnalysis(args.n, args.fanout)
    rows = [
        ["E[delivery round | delivered]", analysis.expected_latency()],
        ["P(delivered by round 3)", analysis.infected_by(3)],
        ["P(delivered by round 6)", analysis.infected_by(6)],
        ["round for 50% of processes", analysis.latency_quantile(0.5)],
        ["round for 99% of processes", analysis.latency_quantile(0.99)],
    ]
    print(format_table(
        ["quantity", "value"], rows,
        title=f"Per-process delivery latency: n={args.n}, F={args.fanout}",
    ))
    return 0


def _cmd_validate_partition(args: argparse.Namespace) -> int:
    import random as _random

    from .analysis import empirical_partition_rate

    empirical, bound = empirical_partition_rate(
        args.n, args.view, trials=args.trials, rng=_random.Random(args.seed)
    )
    print(format_table(
        ["quantity", "value"],
        [
            ["empirical partition rate", empirical],
            ["Eq. 4 per-round bound (sum psi)", bound],
            ["trials", args.trials],
        ],
        title=f"Monte-Carlo check of Eq. 4 at n={args.n}, l={args.view}",
    ))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import (
        PRESET_NAMES,
        agreement_violations,
        causality_violations,
        format_soak_report,
        run_chaos_soak,
    )

    if args.byzantine_rate and not args.byzantine_nodes:
        print("--byzantine-rate needs --byzantine-nodes >= 1")
        return 2
    if args.causal and args.byzantine_nodes:
        print("--causal is incompatible with --byzantine-nodes (double-echo "
              "and the causal hold-back queue are different delivery "
              "disciplines)")
        return 2
    presets = args.preset if args.preset else list(PRESET_NAMES)
    byzantine_rate = args.byzantine_rate
    if args.byzantine_nodes and not byzantine_rate:
        byzantine_rate = 0.5
    results = run_chaos_soak(
        scenarios=args.scenarios,
        n=args.n,
        rounds=args.rounds,
        seed=args.seed,
        intensity=args.intensity,
        presets=presets,
        byzantine_rate=byzantine_rate,
        byzantine_nodes=args.byzantine_nodes,
        causal=args.causal,
    )
    print(f"chaos soak: {args.scenarios} scenario(s), n={args.n}, "
          f"rounds={args.rounds}, seed={args.seed}, "
          f"intensity={args.intensity}"
          + (f", byzantine={args.byzantine_nodes}@{byzantine_rate}"
             if args.byzantine_nodes else "")
          + (", causal" if args.causal else ""))
    print(format_soak_report(results))
    exit_code = 0 if all(result.ok for result in results) else 1
    if args.byzantine_nodes:
        # End-of-soak SLO: the double-echo variant ran with liars active,
        # so the agreement invariant must have held in every scenario.
        broken = agreement_violations(results)
        if broken:
            print(f"AGREEMENT SLO FAILED: {len(broken)} agreement "
                  f"violation(s) under the Byzantine soak")
            for violation in broken:
                print(f"  {violation}")
            exit_code = 1
        else:
            print("agreement SLO: no agreement violations across "
                  f"{len(results)} Byzantine scenario(s)")
    if args.causal:
        # End-of-soak SLO: the causal-delivery variant ran under chaos, so
        # the hold-back gates must never have released a notification before
        # its dependencies nor outgrown their configured bound.
        broken = causality_violations(results)
        if broken:
            print(f"CAUSALITY SLO FAILED: {len(broken)} causal-ordering "
                  f"violation(s) under the chaos soak")
            for violation in broken:
                print(f"  {violation}")
            exit_code = 1
        else:
            print("causality SLO: no causality/holdback-bound violations "
                  f"across {len(results)} causal scenario(s)")
    return exit_code


def _cmd_trace(args: argparse.Namespace) -> int:
    import random as _random

    from .core import LpbcastConfig
    from .sim import NetworkModel, build_lpbcast_nodes, create_simulation
    from .telemetry import (
        format_counters,
        format_profile,
        to_jsonl,
        to_prometheus,
        validate_export_files,
    )

    cfg = LpbcastConfig(fanout=args.fanout, view_max=args.view)
    nodes = build_lpbcast_nodes(args.n, cfg, seed=args.seed)
    network = None
    if args.loss:
        network = NetworkModel(loss_rate=args.loss,
                               rng=_random.Random(args.seed + 1))
    sim = create_simulation(engine=args.engine, network=network,
                            seed=args.seed, shards=args.shards)
    sim.add_nodes(nodes)
    sim.telemetry.tracing = not args.no_tracing

    def publish(round_no: int, s) -> None:
        if round_no <= args.publishes:
            s.nodes[nodes[round_no % args.n].pid].lpb_cast(
                f"trace-{round_no}", float(round_no)
            )

    sim.add_round_hook(publish)
    try:
        sim.run(args.rounds)
        telemetry = sim.telemetry
    finally:
        close = getattr(sim, "close", None)
        if close is not None:
            close()

    print(f"telemetry trace: n={args.n}, rounds={args.rounds}, "
          f"seed={args.seed}, engine={args.engine}, loss={args.loss}, "
          f"tracing={'off' if args.no_tracing else 'on'}")
    print("\n-- counter totals --")
    print(format_counters(telemetry))
    print("\n-- timing profile --")
    print(format_profile(telemetry))
    counts = telemetry.trace.counts()
    print("\n-- trace events --")
    if counts:
        for kind in sorted(counts):
            print(f"{kind:<24} {counts[kind]}")
        if telemetry.trace.dropped:
            print(f"(dropped {telemetry.trace.dropped} past capacity)")
    else:
        print("none recorded")

    jsonl_text = to_jsonl(telemetry)
    prom_text = to_prometheus(telemetry)
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            fh.write(jsonl_text)
        print(f"\nwrote {args.jsonl}")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(prom_text)
        print(f"wrote {args.prom}")
    if args.validate:
        counts = validate_export_files(jsonl_text, prom_text)
        print(f"schema OK: {counts['jsonl_records']} JSONL record(s), "
              f"{counts['prometheus_samples']} Prometheus sample(s)")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .dst import (
        format_self_test_report,
        load_artifact,
        replay_artifact,
        run_campaign,
        run_self_test,
    )

    say = print if not args.quiet else (lambda line: None)

    if args.replay is not None:
        data = load_artifact(args.replay)
        result = replay_artifact(data)
        say(f"replaying {args.replay}")
        say(f"  spec: {result.spec.describe()}")
        say(f"  expected failure: {result.expected_signature}")
        if result.ok:
            say("  reproduced bit-identically (signature and per-engine "
                "fingerprints all match)")
            return 0
        for line in result.mismatches:
            say(f"  MISMATCH: {line}")
        return 1

    if args.self_test:
        outcomes = run_self_test(
            args.seed,
            artifact_dir=args.artifact_dir,
            progress=say,
        )
        print(format_self_test_report(outcomes))
        return 0 if all(outcome.ok for outcome in outcomes) else 1

    if args.causal and args.byzantine:
        raise ValueError(
            "--causal is incompatible with --byzantine: the causal "
            "hold-back queue and the double-echo variant are mutually "
            "exclusive delivery disciplines")
    if args.causal and args.columnar:
        raise ValueError(
            "--causal is incompatible with --columnar: the columnar engine "
            "declares divergence on causal-delivery configurations; the "
            "causal family runs on the serial/sharded pair")
    engines = (("serial", "columnar") if args.columnar
               else ("serial", "sharded"))
    if args.workers != 1 and not args.columnar:
        raise ValueError(
            f"--workers {args.workers} requires --columnar: the worker "
            f"count tunes the columnar engine's shared-memory mode and no "
            f"other engine accepts it (the sharded engine's knob is "
            f"--shards on the demo/trace commands)")
    result = run_campaign(
        args.seed,
        args.count,
        max_n=args.max_n,
        max_rounds=args.max_rounds,
        mutation=args.mutation,
        byzantine=args.byzantine,
        causal=args.causal,
        shrink=not args.no_shrink,
        artifact_dir=args.artifact_dir,
        progress=say,
        engines=engines,
        workers=args.workers,
    )
    print(result.summary())
    for case in result.cases:
        print(f"  {case.signature}  seed={case.shrunk.spec.seed}"
              + (f"  artifact={case.artifact_path}"
                 if case.artifact_path else ""))
    return 0 if result.ok else 1


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lightweight Probabilistic Broadcast (DSN 2001) "
                    "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one broadcast and print the curve")
    demo.add_argument("-n", type=int, default=125, help="system size")
    demo.add_argument("--view", type=int, default=25, help="view bound l")
    demo.add_argument("--fanout", type=int, default=3, help="fanout F")
    demo.add_argument("--rounds", type=int, default=10)
    demo.add_argument("--loss", type=float, default=0.05)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--engine", choices=["serial", "sharded"], default="serial",
        help="round engine: single-process, or sharded across worker "
             "processes (bit-identical result, faster at large n)",
    )
    demo.add_argument(
        "--shards", type=_positive_int, default=None,
        help="worker processes for --engine sharded (default: core count, "
             "capped at 4)",
    )
    demo.set_defaults(fn=_cmd_demo)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "id", choices=["2", "3a", "3b", "4", "5a", "5b", "6a", "6b", "7a", "7b"]
    )
    figure.add_argument("--seeds", type=int, default=3,
                        help="independent runs for simulated figures")
    figure.set_defaults(fn=_cmd_figure)

    tune = sub.add_parser("tune", help="recommend (F, l) for a system size")
    tune.add_argument("n", type=int)
    tune.add_argument("--max-rounds", type=float, default=8.0)
    tune.add_argument("--lifetime", type=float, default=1e9,
                      help="intended lifetime in rounds")
    tune.add_argument("--partition-probability", type=float, default=0.01)
    tune.add_argument(
        "--publish-rate", type=float, default=None,
        help="expected fresh notifications per round; adds an |eventIds|m "
             "sizing recommendation",
    )
    tune.set_defaults(fn=_cmd_tune)

    analyze = sub.add_parser("analyze", help="print Eqs. 1-5 for a system size")
    analyze.add_argument("n", type=int)
    analyze.add_argument("--fanout", type=int, default=3)
    analyze.add_argument("--view", type=int, default=15)
    analyze.set_defaults(fn=_cmd_analyze)

    latency = sub.add_parser(
        "latency", help="per-process delivery-latency analysis"
    )
    latency.add_argument("n", type=int)
    latency.add_argument("--fanout", type=int, default=3)
    latency.set_defaults(fn=_cmd_latency)

    validate = sub.add_parser(
        "validate-partition",
        help="Monte-Carlo check of the Eq. 4 partition bound",
    )
    validate.add_argument("n", type=int)
    validate.add_argument("--view", type=int, default=1)
    validate.add_argument("--trials", type=int, default=5000)
    validate.add_argument("--seed", type=int, default=0)
    validate.set_defaults(fn=_cmd_validate_partition)

    chaos = sub.add_parser(
        "chaos",
        help="soak seeded scenarios under random fault plans with live "
             "invariant checks (exit 1 on any violation)",
    )
    chaos.add_argument("--scenarios", type=_positive_int, default=10,
                       help="number of seeded chaos runs")
    chaos.add_argument("-n", type=int, default=40, help="system size per run")
    chaos.add_argument("--rounds", type=_positive_int, default=50)
    chaos.add_argument("--seed", type=int, default=0,
                       help="root seed; every run derives from it and its "
                            "index, so reports are replayable")
    chaos.add_argument("--intensity", type=float, default=1.0,
                       help="fault-plan harshness multiplier")
    chaos.add_argument(
        "--preset", action="append", default=None,
        choices=["steady_state", "flash_crowd", "mass_departure",
                 "correlated_crashes", "flaky_wan"],
        help="restrict to specific scenario presets (repeatable; "
             "default: cycle through all)",
    )
    chaos.add_argument("--byzantine-nodes", type=int, default=0,
                       help="turn this many processes into liars per run "
                            "(equivocate/forge/replay/poison) and run the "
                            "double-echo protocol variant; the soak then "
                            "asserts the agreement-invariant SLO")
    chaos.add_argument("--byzantine-rate", type=float, default=0.0,
                       help="per-message probability a liar's behavior "
                            "strikes (default 0.5 when --byzantine-nodes "
                            "is set)")
    chaos.add_argument("--causal", action="store_true",
                       help="run every scenario on the causal-delivery "
                            "variant (hold-back gates with retransmit-"
                            "driven dependency recovery); the soak then "
                            "asserts the causality/holdback-bound SLO")
    chaos.set_defaults(fn=_cmd_chaos)

    trace = sub.add_parser(
        "trace",
        help="run a fixed-seed sim with telemetry and print/export the "
             "counter, profile and trace-event summary",
    )
    trace.add_argument("-n", type=int, default=30, help="system size")
    trace.add_argument("--rounds", type=_positive_int, default=10)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--view", type=int, default=8, help="view bound l")
    trace.add_argument("--fanout", type=int, default=3, help="fanout F")
    trace.add_argument("--loss", type=float, default=0.0)
    trace.add_argument("--publishes", type=int, default=5,
                       help="publish one event per round this many rounds")
    trace.add_argument("--engine", choices=["serial", "sharded"],
                       default="serial")
    trace.add_argument("--shards", type=_positive_int, default=None)
    trace.add_argument("--no-tracing", action="store_true",
                       help="record counters/timers only, no per-message "
                            "trace events")
    trace.add_argument("--jsonl", metavar="PATH", default=None,
                       help="write the registry as JSON lines")
    trace.add_argument("--prom", metavar="PATH", default=None,
                       help="write the registry in Prometheus text format")
    trace.add_argument("--validate", action="store_true",
                       help="validate both exports against the documented "
                            "schema")
    trace.set_defaults(fn=_cmd_trace)

    from .dst.mutations import MUTATIONS

    fuzz = sub.add_parser(
        "fuzz",
        help="deterministic-simulation fuzzing with a differential engine "
             "oracle and automatic scenario shrinking (exit 1 on failure)",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="root seed; scenario i derives its own seed from "
                           "it, so any failure replays standalone")
    fuzz.add_argument("--count", type=_positive_int, default=25,
                      help="scenarios to generate and check")
    fuzz.add_argument("--max-n", type=int, default=60,
                      help="largest system size the generator samples")
    fuzz.add_argument("--max-rounds", type=int, default=40,
                      help="longest run the generator samples")
    fuzz.add_argument("--artifact-dir", metavar="DIR", default=None,
                      help="write a JSON repro artifact per failing case")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report failures without minimising them")
    fuzz.add_argument("--mutation", default=None,
                      choices=sorted(MUTATIONS),
                      help="plant a known bug into every scenario "
                           "(debugging the fuzzer itself)")
    fuzz.add_argument("--byzantine", action="store_true",
                      help="draw every scenario from the adversarial family "
                           "(double-echo systems with Byzantine liars in "
                           "the fault plan)")
    fuzz.add_argument("--causal", action="store_true",
                      help="draw every scenario from the ordering family "
                           "(causal-delivery systems with hold-back gates "
                           "under loss and crashes); incompatible with "
                           "--byzantine and --columnar")
    fuzz.add_argument("--columnar", action="store_true",
                      help="differential-check the columnar engine against "
                           "the serial one on the honoured counter subset "
                           "instead of serial-vs-sharded full records; "
                           "single-core (workers=1) unless --workers says "
                           "otherwise")
    fuzz.add_argument("--workers", type=_positive_int, default=1,
                      metavar="N",
                      help="run the columnar side of the differential over "
                           "N shared-memory worker processes (requires "
                           "--columnar; default 1 = single-core, never "
                           "auto-detected from the host's core count — the "
                           "honoured verdict is identical for every N)")
    fuzz.add_argument("--replay", metavar="CASE.json", default=None,
                      help="re-execute a repro artifact and require "
                           "bit-identical reproduction")
    fuzz.add_argument("--self-test", action="store_true",
                      help="plant each known bug, assert the fuzzer finds, "
                           "shrinks and replays it")
    fuzz.add_argument("--quiet", action="store_true",
                      help="print only the final summary")
    fuzz.set_defaults(fn=_cmd_fuzz)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager that closed early (e.g. `| head`).
        return 0
    except ValueError as exc:
        # Bad option *combinations* (e.g. --shards with a non-sharded
        # engine) are validated past argparse, by the engine registry.
        parser.error(str(exc))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
