"""Digest-driven retransmissions (gossip pull).

The paper's gossip messages carry a digest of delivered notifications
precisely so that "older notifications ... stored in a different buffer"
can "satisfy retransmission requests" (Sec. 3.2).  The measurements of
Sec. 5.2 were taken *without* retransmissions, so the engine is optional
(``LpbcastConfig.retransmissions``) and a dedicated ablation bench measures
its effect on reliability.

The scheme is the classical *gossip pull* (Sec. 2.3, footnote 5): on
receiving a digest that names notifications the local process has not
delivered, it solicits them from the digest's sender, who answers from its
pending ``events`` buffer or from the archive.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from .events import Notification
from .ids import EventId, ProcessId


class NotificationArchive:
    """Bounded FIFO store of old notifications, addressable by event id.

    This is the "different buffer" of Sec. 3.2.  Delivered notifications are
    archived; when the bound overflows, the oldest archived notification is
    discarded — after which retransmission requests for it can no longer be
    served, which is exactly the buffer-purging effect the reliability
    measurements of Fig. 6 probe.
    """

    def __init__(self, max_size: int) -> None:
        if max_size < 0:
            raise ValueError("max_size must be non-negative")
        self.max_size = max_size
        self._store: "OrderedDict[EventId, Notification]" = OrderedDict()

    def add(self, notification: Notification) -> List[Notification]:
        """Archive ``notification``; returns evicted notifications."""
        if notification.event_id not in self._store:
            self._store[notification.event_id] = notification
        evicted: List[Notification] = []
        while len(self._store) > self.max_size:
            _, old = self._store.popitem(last=False)
            evicted.append(old)
        return evicted

    def get(self, event_id: EventId) -> Optional[Notification]:
        return self._store.get(event_id)

    def ids(self) -> Tuple[EventId, ...]:
        return tuple(self._store)

    def __contains__(self, event_id: object) -> bool:
        return event_id in self._store

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[EventId]:
        return iter(self._store)


class RetransmissionEngine:
    """Tracks outstanding solicitations and builds requests/responses.

    A notification id is solicited from at most one peer at a time; the
    pending entry expires after ``pending_ttl`` so a lost request or response
    can be re-solicited from a later digest.
    """

    def __init__(self, request_max: int, pending_ttl: float = 4.0) -> None:
        if request_max < 0:
            raise ValueError("request_max must be non-negative")
        if pending_ttl <= 0:
            raise ValueError("pending_ttl must be positive")
        self.request_max = request_max
        self.pending_ttl = pending_ttl
        self._pending: Dict[EventId, float] = {}
        self.requests_built = 0
        self.ids_requested = 0

    def select_missing(
        self,
        digest: Tuple[EventId, ...],
        delivered,
        now: float,
    ) -> List[EventId]:
        """Ids in ``digest`` that are neither delivered nor already pending.

        ``delivered`` is anything supporting ``in`` (the node's event-id
        buffer).  At most ``request_max`` ids are selected, and each becomes
        pending until ``now + pending_ttl``.
        """
        self._expire(now)
        missing: List[EventId] = []
        for event_id in digest:
            if len(missing) >= self.request_max:
                break
            if event_id in delivered or event_id in self._pending:
                continue
            missing.append(event_id)
            self._pending[event_id] = now + self.pending_ttl
        if missing:
            self.requests_built += 1
            self.ids_requested += len(missing)
        return missing

    def on_received(self, event_id: EventId) -> None:
        """The notification arrived (by retransmission or regular gossip)."""
        self._pending.pop(event_id, None)

    def pending_count(self, now: Optional[float] = None) -> int:
        if now is not None:
            self._expire(now)
        return len(self._pending)

    def _expire(self, now: float) -> None:
        expired = [eid for eid, deadline in self._pending.items() if deadline <= now]
        for eid in expired:
            del self._pending[eid]

    @staticmethod
    def serve(
        requested: Tuple[EventId, ...],
        pending_events,
        archive: NotificationArchive,
    ) -> List[Notification]:
        """Look requested notifications up in the pending ``events`` buffer
        first, then in the archive."""
        by_id = {n.event_id: n for n in pending_events}
        found: List[Notification] = []
        for event_id in requested:
            notification = by_id.get(event_id)
            if notification is None:
                notification = archive.get(event_id)
            if notification is not None:
                found.append(notification)
        return found
