"""Partial views (Sec. 3.2 / 3.3) and the weighted-view optimization (Sec. 6.1).

The ``view`` of a process is a bounded, duplicate-free list of process ids
that never contains the owning process itself ("a process pi will never add
itself to its own local view", Sec. 4.1 footnote 8).  When it overflows,
entries are evicted uniformly at random and handed back to the caller so that
Phase 2 of Figure 1(a) can recycle them into ``subs``:

    while |view| > l do
        target <- random element in view
        view <- view \\ {target}
        subs <- subs U {target}

:class:`WeightedPartialView` implements the optimization of Sec. 6.1: every
entry carries a weight counting "the level of awareness for a given process".
When a subscription for an already-known process arrives, its weight grows;
truncation preferentially evicts *high*-weight entries (they are likely known
by many others) and ``subs`` construction prefers *low*-weight entries (they
need more advertising).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from .ids import ProcessId


class PartialView:
    """Uniform random partial view — the default lpbcast view."""

    def __init__(
        self,
        owner: ProcessId,
        max_size: int,
        rng: Optional[random.Random] = None,
    ) -> None:
        if max_size < 0:
            raise ValueError("max_size (l) must be non-negative")
        self.owner = owner
        self.max_size = max_size
        self._rng = rng if rng is not None else random.Random()
        self._items: List[ProcessId] = []
        self._index: Dict[ProcessId, int] = {}

    # -- mutation ----------------------------------------------------------
    def add(self, pid: ProcessId) -> bool:
        """Insert ``pid``; rejects the owner and duplicates.  Does not
        truncate — Phase 2 adds a batch and then truncates once."""
        if pid == self.owner or pid in self._index:
            return False
        self._index[pid] = len(self._items)
        self._items.append(pid)
        return True

    def remove(self, pid: ProcessId) -> bool:
        """Remove ``pid`` if present (Phase 1 unsubscription handling)."""
        pos = self._index.pop(pid, None)
        if pos is None:
            return False
        self._forget_weight(pid)
        last = self._items.pop()
        if pos < len(self._items):
            self._items[pos] = last
            self._index[last] = pos
        return True

    def _pick_eviction_index(self) -> int:
        """Index of the entry to evict; uniform here, overridden by the
        weighted variant."""
        return self._rng.randrange(len(self._items))

    def _forget_weight(self, pid: ProcessId) -> None:
        """Hook for the weighted variant; no-op for uniform views."""

    def truncate(self) -> List[ProcessId]:
        """Evict entries until ``len(view) <= l``; returns the evictees.

        Phase 2 runs this once per received gossip, so the uniform case
        inlines the eviction draw (bit-identical to
        ``Random.randrange(len(view))`` — rejection sampling over
        ``bit_length`` bits, exactly CPython's ``_randbelow``); the weighted
        subclass and custom generators use the overridable
        :meth:`_pick_eviction_index` path.
        """
        items = self._items
        n = len(items)
        if n <= self.max_size:
            return []
        evicted: List[ProcessId] = []
        index = self._index
        max_size = self.max_size
        if type(self) is PartialView and type(self._rng) is random.Random:
            getrandbits = self._rng.getrandbits
            while n > max_size:
                k = n.bit_length()
                pos = getrandbits(k)
                while pos >= n:
                    pos = getrandbits(k)
                pid = items[pos]
                last = items.pop()
                del index[pid]
                n -= 1
                if pos < n:
                    items[pos] = last
                    index[last] = pos
                evicted.append(pid)
            return evicted
        while len(items) > max_size:
            pos = self._pick_eviction_index()
            pid = items[pos]
            last = items.pop()
            del index[pid]
            self._forget_weight(pid)
            if pos < len(items):
                items[pos] = last
                index[last] = pos
            evicted.append(pid)
        return evicted

    def clear(self) -> None:
        self._items.clear()
        self._index.clear()

    # -- queries -----------------------------------------------------------
    def choose_gossip_targets(self, fanout: int) -> List[ProcessId]:
        """``choose F random members target1..targetF in view`` (Fig. 1(b)).

        Returns min(F, |view|) distinct targets, uniformly at random.
        """
        if fanout >= len(self._items):
            return list(self._items)
        return self._rng.sample(self._items, fanout)

    def select_for_subs(self, k: int) -> List[ProcessId]:
        """Entries to advertise in outgoing ``subs``; uniform sample here,
        low-weight-first in the weighted variant."""
        if k >= len(self._items):
            return list(self._items)
        return self._rng.sample(self._items, k)

    def snapshot(self) -> Tuple[ProcessId, ...]:
        return tuple(self._items)

    def __contains__(self, pid: object) -> bool:
        return pid in self._index

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(owner={self.owner}, "
            f"items={sorted(self._items)!r}, l={self.max_size})"
        )


class WeightedPartialView(PartialView):
    """Partial view with awareness weights (Sec. 6.1).

    * :meth:`note_awareness` — called when an incoming ``subs`` entry names a
      process already in the view: "the weight of pj is increased".
    * truncation "consist[s] in removing entries with a high weight, since
      these are more probable of being known by many other processes"; ties
      are broken uniformly at random.
    * "when constructing subs, a process preferably adds entries from its
      view with a small weight."
    """

    def __init__(
        self,
        owner: ProcessId,
        max_size: int,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(owner, max_size, rng)
        self._weights: Dict[ProcessId, int] = {}

    def add(self, pid: ProcessId) -> bool:
        added = super().add(pid)
        if added:
            self._weights[pid] = 0
        return added

    def note_awareness(self, pid: ProcessId) -> None:
        """Record that another process also advertised ``pid``."""
        if pid in self._weights:
            self._weights[pid] += 1

    def weight_of(self, pid: ProcessId) -> int:
        return self._weights.get(pid, 0)

    def _forget_weight(self, pid: ProcessId) -> None:
        self._weights.pop(pid, None)

    def _pick_eviction_index(self) -> int:
        max_weight = max(self._weights[pid] for pid in self._items)
        heaviest = [
            pos for pos, pid in enumerate(self._items)
            if self._weights[pid] == max_weight
        ]
        return self._rng.choice(heaviest)

    def select_for_subs(self, k: int) -> List[ProcessId]:
        if k >= len(self._items):
            return list(self._items)
        # Sort by (weight, random tiebreak) and take the lightest k.
        decorated = [
            (self._weights[pid], self._rng.random(), pid) for pid in self._items
        ]
        decorated.sort()
        return [pid for _, _, pid in decorated[:k]]
