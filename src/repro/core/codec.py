"""Wire codec: protocol messages ↔ JSON-able dictionaries.

The simulators pass message objects by reference; a deployment passes bytes.
This codec is the serialization boundary a real transport would use: every
protocol message (lpbcast, pbcast, logger extension, pub/sub envelope) maps
to a compact tagged dictionary and back, with full round-trip fidelity.

Payloads must themselves be JSON-serializable; the codec never inspects
them.  Unknown tags and malformed structures raise :class:`CodecError`
rather than letting a corrupted message crash a node.

This is the *debug/text* encoding.  The default wire format is the compact
binary codec of :mod:`repro.wire`, which shares :class:`CodecError` and the
message-type coverage of this module; the UDP frame layer keeps both
reachable behind a version byte.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict

from ..loggers.messages import (
    LogUpload,
    LogUploadAck,
    RecoveryRequest,
    RecoveryResponse,
)
from ..pbcast.messages import PbcastData, PbcastDigest, PbcastSolicit
from .events import Notification, Unsubscription
from .ids import EventId
from .message import (
    EchoMessage,
    GossipMessage,
    ReadyMessage,
    RetransmitRequest,
    RetransmitResponse,
    SubscriptionAck,
    SubscriptionRequest,
)


class CodecError(ValueError):
    """Raised for unknown message tags or malformed encodings."""


# -- field helpers -----------------------------------------------------------

def _enc_event_id(event_id: EventId) -> list:
    return [event_id.origin, event_id.seq]


def _dec_event_id(data) -> EventId:
    try:
        origin, seq = data
        return EventId(int(origin), int(seq))
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed event id: {data!r}") from exc


def _enc_notification(n: Notification) -> dict:
    encoded = {"id": _enc_event_id(n.event_id), "p": n.payload,
               "t": n.created_at}
    if n.deps:
        # Causal-mode dependency metadata; absent outside causal mode so
        # pre-causal encodings stay byte-identical.
        encoded["d"] = [_enc_event_id(dep) for dep in n.deps]
    return encoded


def _dec_notification(data) -> Notification:
    try:
        return Notification(_dec_event_id(data["id"]), data.get("p"),
                            float(data.get("t", 0.0)),
                            tuple(_dec_event_id(dep)
                                  for dep in data.get("d", ())))
    except (TypeError, KeyError) as exc:
        raise CodecError(f"malformed notification: {data!r}") from exc


def _enc_unsub(u: Unsubscription) -> list:
    return [u.pid, u.timestamp]


def _dec_unsub(data) -> Unsubscription:
    try:
        pid, ts = data
        return Unsubscription(int(pid), float(ts))
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed unsubscription: {data!r}") from exc


# -- per-type encoders ---------------------------------------------------------

def _enc_gossip(m: GossipMessage) -> dict:
    encoded = {
        "s": m.sender,
        "sub": list(m.subs),
        "uns": [_enc_unsub(u) for u in m.unsubs],
        "ev": [_enc_notification(n) for n in m.events],
        "ids": [_enc_event_id(e) for e in m.event_ids],
    }
    if m.heartbeats:
        encoded["hb"] = [[pid, counter] for pid, counter in m.heartbeats]
    return encoded


def _dec_gossip(d: dict) -> GossipMessage:
    try:
        heartbeats = tuple(
            (int(pid), int(counter)) for pid, counter in d.get("hb", ())
        )
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed heartbeats: {d.get('hb')!r}") from exc
    return GossipMessage(
        sender=int(d["s"]),
        subs=tuple(int(p) for p in d.get("sub", ())),
        unsubs=tuple(_dec_unsub(u) for u in d.get("uns", ())),
        events=tuple(_dec_notification(n) for n in d.get("ev", ())),
        event_ids=tuple(_dec_event_id(e) for e in d.get("ids", ())),
        heartbeats=heartbeats,
    )


_ENCODERS: Dict[type, tuple] = {
    GossipMessage: ("g", _enc_gossip),
    SubscriptionRequest: ("sr", lambda m: {"p": m.subscriber}),
    SubscriptionAck: (
        "sa", lambda m: {"c": m.contact, "v": list(m.view_sample)}
    ),
    RetransmitRequest: (
        "rq", lambda m: {"p": m.requester,
                         "ids": [_enc_event_id(e) for e in m.event_ids]}
    ),
    RetransmitResponse: (
        "rr", lambda m: {"p": m.responder,
                         "ev": [_enc_notification(n) for n in m.events]}
    ),
    EchoMessage: (
        "ec", lambda m: {"s": m.sender, "id": _enc_event_id(m.event_id),
                         "d": m.digest}
    ),
    ReadyMessage: (
        "rd", lambda m: {"s": m.sender, "id": _enc_event_id(m.event_id),
                         "d": m.digest}
    ),
    PbcastData: (
        "pd", lambda m: {"s": m.sender, "n": _enc_notification(m.notification),
                         "h": m.hops}
    ),
    PbcastDigest: (
        "pg", lambda m: {"s": m.sender,
                         "ids": [_enc_event_id(e) for e in m.ids],
                         "sub": list(m.subs),
                         "uns": [_enc_unsub(u) for u in m.unsubs]}
    ),
    PbcastSolicit: (
        "ps", lambda m: {"p": m.requester,
                         "ids": [_enc_event_id(e) for e in m.ids]}
    ),
    LogUpload: (
        "lu", lambda m: {"s": m.sender, "n": _enc_notification(m.notification)}
    ),
    LogUploadAck: (
        "la", lambda m: {"l": m.logger, "id": _enc_event_id(m.event_id)}
    ),
    RecoveryRequest: (
        "lr", lambda m: {"p": m.requester,
                         "f": [_enc_event_id(e) for e in m.frontier]}
    ),
    RecoveryResponse: (
        "lp", lambda m: {"l": m.logger,
                         "ev": [_enc_notification(n) for n in m.events],
                         "c": m.complete}
    ),
}

_DECODERS: Dict[str, Callable[[dict], Any]] = {
    "g": _dec_gossip,
    "sr": lambda d: SubscriptionRequest(int(d["p"])),
    "sa": lambda d: SubscriptionAck(
        int(d["c"]), tuple(int(p) for p in d.get("v", ()))
    ),
    "rq": lambda d: RetransmitRequest(
        int(d["p"]), tuple(_dec_event_id(e) for e in d.get("ids", ()))
    ),
    "rr": lambda d: RetransmitResponse(
        int(d["p"]), tuple(_dec_notification(n) for n in d.get("ev", ()))
    ),
    "ec": lambda d: EchoMessage(
        int(d["s"]), _dec_event_id(d["id"]), int(d["d"])
    ),
    "rd": lambda d: ReadyMessage(
        int(d["s"]), _dec_event_id(d["id"]), int(d["d"])
    ),
    "pd": lambda d: PbcastData(
        int(d["s"]), _dec_notification(d["n"]), int(d.get("h", 0))
    ),
    "pg": lambda d: PbcastDigest(
        int(d["s"]),
        tuple(_dec_event_id(e) for e in d.get("ids", ())),
        tuple(int(p) for p in d.get("sub", ())),
        tuple(_dec_unsub(u) for u in d.get("uns", ())),
    ),
    "ps": lambda d: PbcastSolicit(
        int(d["p"]), tuple(_dec_event_id(e) for e in d.get("ids", ()))
    ),
    "lu": lambda d: LogUpload(int(d["s"]), _dec_notification(d["n"])),
    "la": lambda d: LogUploadAck(int(d["l"]), _dec_event_id(d["id"])),
    "lr": lambda d: RecoveryRequest(
        int(d["p"]), tuple(_dec_event_id(e) for e in d.get("f", ()))
    ),
    "lp": lambda d: RecoveryResponse(
        int(d["l"]),
        tuple(_dec_notification(n) for n in d.get("ev", ())),
        bool(d.get("c", True)),
    ),
}


def encode_message(message: object) -> dict:
    """Message object → tagged JSON-able dictionary."""
    entry = _ENCODERS.get(type(message))
    if entry is None:
        # Pub/sub envelopes nest another message; import lazily to avoid a
        # package cycle (pubsub imports core).
        from ..pubsub.peer import TopicEnvelope
        if isinstance(message, TopicEnvelope):
            if not isinstance(message.topic, str):
                raise CodecError(
                    f"envelope topic must be a string, "
                    f"got {type(message.topic).__name__}"
                )
            return {"@": "te", "topic": message.topic,
                    "inner": encode_message(message.inner)}
        raise CodecError(f"cannot encode {type(message).__name__}")
    tag, encoder = entry
    encoded = encoder(message)
    encoded["@"] = tag
    return encoded


def decode_message(data: dict) -> object:
    """Tagged dictionary → message object."""
    if not isinstance(data, dict) or "@" not in data:
        raise CodecError(f"not a tagged message: {data!r}")
    tag = data["@"]
    if not isinstance(tag, str):
        # An unhashable or non-string tag (e.g. {"@": []}) must be a codec
        # error, not a TypeError from the registry lookup.
        raise CodecError(f"invalid message tag {tag!r}")
    if tag == "te":
        from ..pubsub.peer import TopicEnvelope
        try:
            topic = data["topic"]
            inner = data["inner"]
        except KeyError as exc:
            raise CodecError(f"malformed envelope: {data!r}") from exc
        if not isinstance(topic, str):
            # A non-string topic (e.g. a dict, or None) would build an
            # envelope no peer's topic table can match and no re-encode
            # could round-trip — reject it at the boundary instead.
            raise CodecError(
                f"envelope topic must be a string, got {topic!r}"
            )
        return TopicEnvelope(topic, decode_message(inner))
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise CodecError(f"unknown message tag {tag!r}")
    try:
        return decoder(data)
    except CodecError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed {tag!r} message: {data!r}") from exc


def to_json(message: object) -> str:
    """Message object → JSON string (the wire format)."""
    return json.dumps(encode_message(message), separators=(",", ":"))


def from_json(text: str) -> object:
    """JSON string → message object."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"invalid JSON: {exc}") from exc
    return decode_message(data)


def wire_size(message: object, fmt: str = "json") -> int:
    """Serialized size in bytes — a concrete alternative to the element
    counts of :meth:`GossipMessage.size_estimate`.

    ``fmt="json"`` sizes this codec's text encoding; ``fmt="binary"`` the
    compact codec of :mod:`repro.wire` (the default datagram and
    cross-shard format).
    """
    if fmt == "json":
        return len(to_json(message).encode("utf-8"))
    if fmt == "binary":
        from ..wire import encode_binary
        return len(encode_binary(message))
    raise ValueError(f"unknown wire format {fmt!r}")
