"""Notifications (application events) and related records.

The paper distinguishes *notifications* — the application payload of the
broadcast, "the actual payload of the gossip messages" — from *gossip
messages*, which are protocol messages (Sec. 2.3, footnote 7).  This module
defines the notification record and the timestamped unsubscription record of
Sec. 3.4.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Tuple

from .ids import EventId, ProcessId


class Notification(NamedTuple):
    """An application event disseminated by lpbcast.

    ``created_at`` records the (simulated) time or round at which the event
    was published; metrics layers use it to compute delivery latency.  It is
    carried along but never interpreted by the protocol itself.

    ``deps`` is the publisher's causal frontier at publication time, one
    :class:`EventId` per origin — the compact vector-interval metadata of
    the causal-delivery mode ("Breaking the Scalability Barrier of Causal
    Broadcast": under causal delivery every origin's delivered set is a
    contiguous prefix, so one ``(origin, seq)`` pair encodes the whole
    interval ``[1, seq]``).  Empty outside causal mode; the protocol core
    never interprets it — only :class:`~repro.core.delivery.CausalDeliveryGate`
    does.
    """

    event_id: EventId
    payload: Any
    created_at: float = 0.0
    deps: Tuple[EventId, ...] = ()

    @property
    def origin(self) -> ProcessId:
        """The publishing process (embedded in the event id, Sec. 3.2)."""
        return self.event_id.origin


class Unsubscription(NamedTuple):
    """A timestamped unsubscription (Sec. 3.4).

    "To avoid the situation where unsubscriptions remain in the system
    forever (since unSubs is not purged), there is a timestamp attached to
    every unsubscription. After a certain time, the unsubscription becomes
    obsolete."
    """

    pid: ProcessId
    timestamp: float

    def is_obsolete(self, now: float, ttl: float) -> bool:
        """True once ``ttl`` time units have elapsed since emission."""
        return now - self.timestamp >= ttl


def make_notification(
    origin: ProcessId, seq: int, payload: Any = None, created_at: float = 0.0
) -> Notification:
    """Convenience constructor pairing an :class:`EventId` with a payload."""
    if seq < 1:
        raise ValueError("sequence numbers are 1-based")
    return Notification(EventId(origin, seq), payload, created_at)
