"""The lpbcast protocol state machine — a faithful rendering of Figure 1.

A :class:`LpbcastNode` is transport-agnostic: incoming messages arrive through
:meth:`LpbcastNode.handle_message` and the periodic gossip is triggered by
:meth:`LpbcastNode.on_tick`; both return :class:`~repro.core.message.Outgoing`
records that a runner (synchronous rounds per Sec. 5.1, or the discrete-event
runtime standing in for the Sec. 5.2 testbed) delivers subject to loss,
latency and crashes.  This mirrors the paper's methodology of running the
*same* algorithm under simulation and deployment.

Reception follows the three phases of Figure 1(a) in order:

I.   unsubscriptions update ``view`` and ``unSubs`` (random truncation);
II.  subscriptions update ``view``; overflow evictees are recycled into
     ``subs`` (random truncation);
III. fresh notifications are delivered, recorded in ``eventIds`` (oldest-drop)
     and staged in ``events`` (random-drop) for forwarding.

Phases I–II are delegated to
:class:`~repro.membership.layer.PartialViewMembership` — the paper presents
the algorithm "as a monolithical algorithm ... to emphasize the possibility
of dealing with membership and event dissemination at the same level", but
notes (Sec. 6.2) that the membership is a separable layer; the code expresses
the separation while the node preserves the monolithic phase ordering.

Emission follows Figure 1(b): every period the node ships its ``subs`` plus
its own id, its ``unSubs``, the staged ``events`` (cleared afterwards — every
notification is gossiped at most once per process) and its ``eventIds``
digest, to ``F`` targets drawn uniformly from ``view``.

Optional behaviours, each mapped to a section of the paper, are switched from
:class:`~repro.core.config.LpbcastConfig`: weighted views (Sec. 6.1),
membership gossip frequency (Sec. 6.1), digest-driven retransmissions
(Sec. 3.2), and the compact per-sender id digest (Sec. 3.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Union

from ..membership.layer import PartialViewMembership
from .buffers import (
    CompactEventIdDigest,
    FifoEventIdBuffer,
    FrequencyAwareEventBuffer,
    RandomDropBuffer,
)
from .config import LpbcastConfig
from .delivery import CausalDeliveryGate
from .events import Notification
from .ids import EventId, ProcessId
from .message import (
    EchoMessage,
    GossipMessage,
    Outgoing,
    ReadyMessage,
    RetransmitRequest,
    RetransmitResponse,
    SubscriptionAck,
    SubscriptionRequest,
    payload_digest,
)
from .retransmit import NotificationArchive, RetransmissionEngine
from .subscription import JoinState

DeliveryListener = Callable[[ProcessId, Notification, float], None]
"""Callback invoked as ``listener(pid, notification, now)`` on LPB-DELIVER."""


def _notification_key(notification: Notification) -> EventId:
    """Buffer identity of a staged notification (module-level so node state
    stays picklable — the sharded round engine ships nodes across
    processes)."""
    return notification.event_id


@dataclass
class NodeStats:
    """Per-node protocol counters, used by metrics and assertions."""

    published: int = 0
    delivered: int = 0
    duplicates: int = 0
    gossips_sent: int = 0
    gossips_received: int = 0
    events_dropped: int = 0
    event_ids_evicted: int = 0
    retransmit_requests_sent: int = 0
    retransmit_requests_received: int = 0
    retransmits_served: int = 0
    retransmits_delivered: int = 0
    join_requests_sent: int = 0
    join_requests_served: int = 0
    echoes_sent: int = 0
    echoes_received: int = 0
    readies_sent: int = 0
    readies_received: int = 0
    echo_pending_evicted: int = 0
    causal_held_back: int = 0
    causal_evicted: int = 0
    causal_deps_solicited: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class LpbcastNode:
    """One lpbcast process :math:`p_i`.

    Parameters
    ----------
    pid:
        This process's identifier.
    config:
        Protocol parameters (F, l, buffer bounds, ...).
    rng:
        Private random stream; pass a seeded ``random.Random`` for
        reproducible runs.  Each node must have its own stream.
    initial_view:
        Bootstrap contents of ``view`` (e.g. from the runner's topology
        builder or a :class:`~repro.membership.bootstrap.PriorityProcessSet`).
    """

    def __init__(
        self,
        pid: ProcessId,
        config: Optional[LpbcastConfig] = None,
        rng: Optional[random.Random] = None,
        initial_view: Iterable[ProcessId] = (),
    ) -> None:
        self.pid = pid
        self.config = config if config is not None else LpbcastConfig()
        self.rng = rng if rng is not None else random.Random()
        cfg = self.config

        self.membership = PartialViewMembership(
            owner=pid,
            view_max=cfg.view_max,
            subs_max=cfg.subs_max,
            unsubs_max=cfg.unsubs_max,
            unsub_ttl=cfg.unsub_ttl,
            rng=self.rng,
            weighted=cfg.weighted_views,
            initial_view=initial_view,
        )

        if cfg.weighted_events:
            self.events = FrequencyAwareEventBuffer(cfg.events_max, self.rng)
        else:
            self.events = RandomDropBuffer(
                cfg.events_max, self.rng, key=_notification_key
            )
        self.event_ids: Union[FifoEventIdBuffer, CompactEventIdDigest]
        if cfg.compact_event_ids:
            self.event_ids = CompactEventIdDigest(cfg.event_ids_max)
        else:
            self.event_ids = FifoEventIdBuffer(cfg.event_ids_max)

        self.archive = NotificationArchive(cfg.archive_max)
        self.retransmitter = RetransmissionEngine(
            cfg.retransmit_request_max, pending_ttl=4 * cfg.gossip_period
        )

        # Hot-path flags resolved once: reception/delivery run per message,
        # and isinstance dispatch on buffer variants is measurable at scale.
        self._compact_ids = cfg.compact_event_ids
        self._weighted_events = cfg.weighted_events
        self._archiving = cfg.retransmissions or cfg.push_back
        self._double_echo = cfg.double_echo
        self._causal_mode = cfg.causal_delivery
        # The causal hold-back queue is pure data (no callbacks, no RNG), so
        # node state stays picklable for the sharded engine.
        self.causal: Optional[CausalDeliveryGate] = (
            CausalDeliveryGate(cfg.causal_holdback_max)
            if cfg.causal_delivery else None
        )
        # Double-echo quorum state, keyed by event id; each entry tracks the
        # held payload (if any), its digest, whether this node has echoed /
        # gone ready, and per-digest echo/ready sender sets.  Insertion order
        # doubles as the eviction order (oldest pending event first).
        self._echo_pending: dict = {}

        self.stats = NodeStats()
        self._listeners: List[DeliveryListener] = []
        self._next_seq = 0
        self._tick_count = 0
        self._join: Optional[JoinState] = None

    # -- views over the membership layer (the paper's variable names) -------
    @property
    def view(self):
        """The bounded partial ``view`` (Sec. 3.2)."""
        return self.membership.view

    @property
    def subs(self):
        """Pending subscriptions to forward (``subs``)."""
        return self.membership.subs

    @property
    def unsubs(self):
        """Pending unsubscriptions to forward (``unSubs``)."""
        return self.membership.unsubs

    @property
    def unsubscribed(self) -> bool:
        return self.membership.unsubscribed

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def add_delivery_listener(self, listener: DeliveryListener) -> None:
        """Register a callback for every LPB-DELIVER."""
        self._listeners.append(listener)

    def lpb_cast(self, payload=None, now: float = 0.0) -> Notification:
        """Publish a notification (``upon LPB-CAST(e): events <- events U {e}``).

        The publisher also delivers its own notification locally (it counts
        as the first infected process, :math:`s_0 = 1` in Sec. 4.2) and
        records the id so later copies are recognized as duplicates.
        """
        if self.unsubscribed:
            raise RuntimeError(f"process {self.pid} has unsubscribed")
        self._next_seq += 1
        event_id = EventId(self.pid, self._next_seq)
        if self._causal_mode:
            # Stamp the local frontier *before* the new event enters it: the
            # vector-interval dependency metadata of the causal mode.
            deps = self.causal.publish_deps()
            notification = Notification(event_id, payload, now, deps)
            self.stats.published += 1
            self._record_receipt(notification)
            released, _ = self.causal.offer(notification)
            for ready in released:  # own event is always causally ready
                self._deliver(ready, now, record_id=False)
            return notification
        notification = Notification(event_id, payload, now)
        self.stats.published += 1
        self._deliver(notification, now)
        self._stage_for_forwarding(notification)
        return notification

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, sender: ProcessId, message, now: float) -> List[Outgoing]:
        """Single entry point used by runners; dispatches on message type."""
        if isinstance(message, GossipMessage):
            return self.on_gossip(message, now)
        if isinstance(message, SubscriptionRequest):
            return self.on_subscription_request(message, now)
        if isinstance(message, SubscriptionAck):
            return self.on_subscription_ack(message, now)
        if isinstance(message, RetransmitRequest):
            return self.on_retransmit_request(message, now)
        if isinstance(message, RetransmitResponse):
            return self.on_retransmit_response(message, now)
        if isinstance(message, EchoMessage):
            return self.on_echo(message, now)
        if isinstance(message, ReadyMessage):
            return self.on_ready(message, now)
        raise TypeError(f"unknown message type: {type(message).__name__}")

    # ------------------------------------------------------------------
    # Gossip reception — Figure 1(a)
    # ------------------------------------------------------------------
    def on_gossip(self, gossip: GossipMessage, now: float) -> List[Outgoing]:
        """Process one incoming gossip through phases I–III."""
        if gossip.sender == self.pid:
            return []  # defensive: a node never processes its own gossip
        self.stats.gossips_received += 1
        if self._join is not None:
            self._join.on_gossip_received()

        # Phases I and II (membership layer), then phase III (events).
        self.membership.apply_membership(gossip.subs, gossip.unsubs, now)
        out: List[Outgoing] = []
        if self._double_echo:
            self._phase3_double_echo(gossip, now, out)
        elif self._causal_mode:
            self._phase3_causal(gossip, now, out)
        else:
            self._phase3_notifications(gossip, now)

        if self.config.retransmissions and gossip.event_ids:
            missing = self.retransmitter.select_missing(
                gossip.event_ids, self.event_ids, now
            )
            if missing:
                self.stats.retransmit_requests_sent += 1
                out.append(
                    Outgoing(
                        gossip.sender,
                        RetransmitRequest(self.pid, tuple(missing)),
                    )
                )
        if self.config.push_back:
            pushed = self._push_back(gossip)
            if pushed:
                out.append(
                    Outgoing(gossip.sender,
                             RetransmitResponse(self.pid, tuple(pushed)))
                )
        return out

    def _push_back(self, gossip: GossipMessage) -> List[Notification]:
        """Gossip push (Sec. 2.3 fn. 5): send the sender retransmittable
        notifications its digest shows it is missing.  The sender's digest
        is bounded knowledge, so this may over-push; the receiver's own
        duplicate detection absorbs it."""
        sender_has = set(gossip.event_ids)
        pushed: List[Notification] = []
        pushed_ids: set = set()
        budget = self.config.retransmit_request_max
        for notification in self.events:
            if len(pushed) >= budget:
                return pushed
            event_id = notification.event_id
            if event_id not in sender_has:
                pushed.append(notification)
                pushed_ids.add(event_id)
        for event_id in self.archive:
            if len(pushed) >= budget:
                break
            if event_id not in sender_has and event_id not in pushed_ids:
                notification = self.archive.get(event_id)
                if notification is not None:
                    pushed.append(notification)
                    pushed_ids.add(event_id)
        return pushed

    def _phase3_notifications(self, gossip: GossipMessage, now: float) -> None:
        """Phase 3: deliver fresh notifications and stage them for forwarding.

        With ``digest_implies_delivery`` (the paper's Sec. 5.2 measurement
        mode, the default), an unknown id in the gossip's ``eventIds`` digest
        also counts as a delivery: the digest keeps re-advertising an event
        every round while it stays buffered, which is what makes repetitions
        unlimited and lets the epidemic match the Sec. 4 analysis.  The
        synthetic notification carries no payload and is *not* staged into
        ``events`` (only its identity spreads, through this node's own future
        digests).
        """
        weighted_events = self._weighted_events
        event_ids = self.event_ids
        for notification in gossip.events:
            if notification.event_id in event_ids:
                self.stats.duplicates += 1
                if weighted_events:
                    # Sec. 6.1 applied to events: a duplicate is evidence the
                    # notification is already widely held.
                    self.events.note_seen(notification.event_id)
                continue
            self._deliver(notification, now)
            self._stage_for_forwarding(notification)
            self.retransmitter.on_received(notification.event_id)
        if self.config.digest_implies_delivery:
            for event_id in gossip.event_ids:
                if event_id in event_ids:
                    continue
                # The synthetic notification stands in for a payload this
                # node never received: it must not enter the retransmission
                # archive, or a later retransmission / push-back could serve
                # a ``payload=None`` ghost in place of the real event.
                self._deliver(Notification(event_id, None, now), now,
                              archivable=False)

    def _deliver(self, notification: Notification, now: float,
                 archivable: bool = True, record_id: bool = True) -> None:
        """LPB-DELIVER: hand the notification to the application and record
        its id (bounded, oldest-drop).  ``archivable=False`` marks synthetic
        digest-implied deliveries, which carry no payload worth serving.
        ``record_id=False`` marks causal-mode releases, whose ids (and
        archive copies) were already recorded at *receipt* by
        :meth:`_record_receipt` — delivery only waited on the gate."""
        self.stats.delivered += 1
        if self._listeners:
            for listener in self._listeners:
                listener(self.pid, notification, now)
        if record_id:
            if self._compact_ids:
                self.event_ids.add(notification.event_id)
            else:
                evicted = self.event_ids.add(notification.event_id)
                if evicted:
                    self.stats.event_ids_evicted += len(evicted)
            if archivable and self._archiving:
                self.archive.add(notification)

    def _stage_for_forwarding(self, notification: Notification) -> None:
        """Add to ``events`` and enforce its bound (random drop).  A dropped
        notification was delivered locally but will never be forwarded by
        this process — the overload effect probed in Fig. 6."""
        self.events.add(notification)
        dropped = self.events.truncate()
        self.stats.events_dropped += len(dropped)

    # ------------------------------------------------------------------
    # Causal delivery — hold-back ordering variant
    # ------------------------------------------------------------------
    def _phase3_causal(self, gossip: GossipMessage, now: float,
                       out: List[Outgoing]) -> None:
        """Phase III under ``causal_delivery``: like double echo, the payload
        keeps riding the epidemic — on first receipt it is recorded, staged
        for forwarding and archived — but LPB-DELIVER waits until the
        hold-back gate's frontier covers the event's dependencies.  Missing
        dependencies are solicited from the gossip sender through the normal
        retransmission machinery (the sender delivered the event, so under
        causal delivery it also holds — or held — everything the event
        depends on)."""
        weighted_events = self._weighted_events
        for notification in gossip.events:
            if notification.event_id in self.event_ids:
                self.stats.duplicates += 1
                if weighted_events:
                    self.events.note_seen(notification.event_id)
                continue
            self._causal_receive(notification, now, gossip.sender, out)

    def _causal_receive(self, notification: Notification, now: float,
                        solicit_from: ProcessId, out: List[Outgoing]) -> None:
        """Record one fresh notification and run it through the causal gate,
        delivering whatever becomes ready and soliciting missing
        dependencies from ``solicit_from``."""
        self._record_receipt(notification)
        released, missing = self.causal.offer(notification)
        self.stats.causal_held_back = self.causal.held_back_total
        self.stats.causal_evicted = self.causal.evicted
        for ready in released:
            self._deliver(ready, now, record_id=False)
        if missing and self.config.retransmissions:
            wanted = self.retransmitter.select_missing(
                tuple(missing), self.event_ids, now
            )
            if wanted:
                self.stats.retransmit_requests_sent += 1
                self.stats.causal_deps_solicited += len(wanted)
                out.append(
                    Outgoing(
                        solicit_from,
                        RetransmitRequest(self.pid, tuple(wanted)),
                    )
                )

    def _record_receipt(self, notification: Notification) -> None:
        """Causal mode: record a notification at *receipt* — id digest,
        forwarding stage, retransmission archive and pending-request clear —
        so its identity and payload keep spreading while delivery waits on
        the gate."""
        if self._compact_ids:
            self.event_ids.add(notification.event_id)
        else:
            evicted = self.event_ids.add(notification.event_id)
            if evicted:
                self.stats.event_ids_evicted += len(evicted)
        if self._archiving:
            self.archive.add(notification)
        self._stage_for_forwarding(notification)
        self.retransmitter.on_received(notification.event_id)

    # ------------------------------------------------------------------
    # Double-echo delivery — Byzantine-tolerant variant
    # ------------------------------------------------------------------
    def _phase3_double_echo(self, gossip: GossipMessage, now: float,
                            out: List[Outgoing]) -> None:
        """Phase III under ``double_echo``: payloads are held back until a
        sampled Echo quorum and then a Ready quorum certify a single digest
        per event id (Bracha's double echo, sample-based as in "Scalable
        Byzantine Reliable Broadcast").  The payload still rides the normal
        gossip stream — it is staged for forwarding on first receipt — so
        dissemination keeps its epidemic shape; only *delivery* waits.  An
        equivocating source splits its victims' echoes across digests, so at
        most one digest can reach quorum and no two correct nodes deliver
        different payloads for one event id."""
        for notification in gossip.events:
            if notification.event_id in self.event_ids:
                self.stats.duplicates += 1
                continue
            self._echo_note_payload(notification, now, out)

    def _echo_entry(self, event_id: EventId) -> dict:
        entry = self._echo_pending.get(event_id)
        if entry is None:
            if len(self._echo_pending) >= self.config.echo_pending_max:
                oldest = next(iter(self._echo_pending))
                del self._echo_pending[oldest]
                self.stats.echo_pending_evicted += 1
            entry = {"payload": None, "digest": None, "echoed": False,
                     "ready": None, "echoes": {}, "readies": {}}
            self._echo_pending[event_id] = entry
        return entry

    def _echo_note_payload(self, notification: Notification, now: float,
                           out: List[Outgoing]) -> None:
        entry = self._echo_entry(notification.event_id)
        if entry["payload"] is None:
            entry["payload"] = notification
            entry["digest"] = payload_digest(notification.payload)
            self._stage_for_forwarding(notification)
        if not entry["echoed"]:
            # Echo exactly once per event id — the digest of the *first*
            # copy received.  Echoing later variants too would let an
            # equivocating source drive two digests to quorum.
            entry["echoed"] = True
            digest = entry["digest"]
            echo = EchoMessage(self.pid, notification.event_id, digest)
            targets = self.membership.gossip_targets(self.config.echo_fanout)
            for target in targets:
                out.append(Outgoing(target, echo))
            if targets:
                self.stats.echoes_sent += 1
            self._echo_register(self.pid, notification.event_id, digest,
                                now, out)
        self._maybe_echo_deliver(notification.event_id, now)

    def on_echo(self, echo: EchoMessage, now: float) -> List[Outgoing]:
        """Count one echo vote; a quorum for a digest triggers Ready."""
        if not self._double_echo or echo.event_id in self.event_ids:
            return []
        self.stats.echoes_received += 1
        out: List[Outgoing] = []
        self._echo_register(echo.sender, echo.event_id, echo.digest, now, out)
        return out

    def on_ready(self, ready: ReadyMessage, now: float) -> List[Outgoing]:
        """Count one ready vote; quorum amplifies and eventually delivers."""
        if not self._double_echo or ready.event_id in self.event_ids:
            return []
        self.stats.readies_received += 1
        out: List[Outgoing] = []
        self._ready_register(ready.sender, ready.event_id, ready.digest,
                             now, out)
        return out

    def _echo_register(self, sender: ProcessId, event_id: EventId,
                       digest: int, now: float, out: List[Outgoing]) -> None:
        entry = self._echo_entry(event_id)
        senders = entry["echoes"].setdefault(digest, set())
        if sender in senders:
            return
        senders.add(sender)
        if entry["ready"] is None \
                and len(senders) >= self.config.echo_threshold:
            self._go_ready(entry, event_id, digest, now, out)

    def _ready_register(self, sender: ProcessId, event_id: EventId,
                        digest: int, now: float, out: List[Outgoing]) -> None:
        entry = self._echo_entry(event_id)
        senders = entry["readies"].setdefault(digest, set())
        if sender in senders:
            return
        senders.add(sender)
        if entry["ready"] is None \
                and len(senders) >= self.config.ready_threshold:
            # Ready amplification: a ready quorum is as convincing as an
            # echo quorum and lets under-sampled nodes catch up.
            self._go_ready(entry, event_id, digest, now, out)
        self._maybe_echo_deliver(event_id, now)

    def _go_ready(self, entry: dict, event_id: EventId, digest: int,
                  now: float, out: List[Outgoing]) -> None:
        entry["ready"] = digest
        ready = ReadyMessage(self.pid, event_id, digest)
        targets = self.membership.gossip_targets(self.config.echo_fanout)
        for target in targets:
            out.append(Outgoing(target, ready))
        if targets:
            self.stats.readies_sent += 1
        self._ready_register(self.pid, event_id, digest, now, out)

    def _maybe_echo_deliver(self, event_id: EventId, now: float) -> None:
        """Deliver once the held payload's digest has a ready quorum."""
        entry = self._echo_pending.get(event_id)
        if entry is None or entry["payload"] is None:
            return
        senders = entry["readies"].get(entry["digest"], ())
        if len(senders) < self.config.ready_threshold:
            return
        notification = entry["payload"]
        del self._echo_pending[event_id]
        self._deliver(notification, now)
        self.retransmitter.on_received(event_id)

    # ------------------------------------------------------------------
    # Periodic gossip emission — Figure 1(b)
    # ------------------------------------------------------------------
    def on_tick(self, now: float) -> List[Outgoing]:
        """Emit the periodic gossip(s); called every T by the runner.

        "This is done even if the process has not received any new
        notifications since it last sent a gossip message" — empty gossips
        still carry digests and membership and keep views uniform.
        """
        cfg = self.config
        self._tick_count += 1
        out: List[Outgoing] = []

        if self._join is not None and self._join.should_retry(now):
            out.extend(self._emit_join_request(now))

        self.membership.purge(now)

        include_membership = (self._tick_count % cfg.membership_period) == 0
        gossip = self._build_gossip(now, include_membership)
        targets = self.membership.gossip_targets(cfg.fanout)
        for target in targets:
            out.append(Outgoing(target, gossip))
        if targets:
            self.stats.gossips_sent += 1
        # "events <- empty" after sending (each notification forwarded once).
        self.events.clear()

        # Sec. 6.1: gossiping membership information more often than events
        # brings views closer to uniform.  Boost gossips carry membership
        # only, to freshly drawn targets, and count against ``gossips_sent``
        # exactly like the regular emission — they are real wire traffic.
        if len(self.view) > 0:
            for _ in range(cfg.membership_boost):
                boost = self._build_gossip(now, include_membership=True,
                                           membership_only=True)
                boost_targets = self.membership.gossip_targets(cfg.fanout)
                for target in boost_targets:
                    out.append(Outgoing(target, boost))
                if boost_targets:
                    self.stats.gossips_sent += 1
        return out

    def _build_gossip(
        self, now: float, include_membership: bool, membership_only: bool = False
    ) -> GossipMessage:
        if include_membership:
            # "gossip.subs <- subs U {pi}": the sender always advertises
            # itself, which keeps in-degrees balanced (Sec. 4.3).
            subs, unsubs = self.membership.membership_payload(now)
        else:
            subs, unsubs = (), ()

        if membership_only:
            return GossipMessage(self.pid, subs=subs, unsubs=unsubs)
        return GossipMessage(
            self.pid,
            subs=subs,
            unsubs=unsubs,
            events=tuple(self.events),
            event_ids=self._wire_digest(),
        )

    def _wire_digest(self) -> tuple:
        """Digest payload: the ``eventIds`` snapshot (Figure 1(b)), cached by
        the buffer between deliveries so idle ticks stop rebuilding an
        unchanged tuple.  With the compact digest, enumerate each sender's
        in-sequence frontier."""
        if self._compact_ids:
            ids: List[EventId] = []
            for origin in self.event_ids.senders():
                last = self.event_ids.last_in_sequence(origin)
                if last > 0:
                    ids.append(EventId(origin, last))
            return tuple(ids)
        return self.event_ids.snapshot()

    # ------------------------------------------------------------------
    # Join / leave — Sec. 3.4
    # ------------------------------------------------------------------
    def start_join(self, contact: ProcessId, now: float) -> List[Outgoing]:
        """Begin subscribing through ``contact`` (must already be in Π)."""
        if contact == self.pid:
            raise ValueError("cannot join through oneself")
        self._join = JoinState(contact, self.config.join_timeout)
        return self._emit_join_request(now)

    def _emit_join_request(self, now: float) -> List[Outgoing]:
        assert self._join is not None
        self._join.start(now)
        self.stats.join_requests_sent += 1
        return [Outgoing(self._join.contact, SubscriptionRequest(self.pid))]

    def on_subscription_request(
        self, request: SubscriptionRequest, now: float
    ) -> List[Outgoing]:
        """Contact side: adopt the subscriber and gossip its subscription on
        its behalf; answer with a view sample to bootstrap the joiner."""
        joiner = request.subscriber
        if joiner == self.pid:
            return []
        self.stats.join_requests_served += 1
        self.membership.add(joiner)
        self.membership.subs.add(joiner)
        self.membership.subs.truncate()
        sample = tuple(self.view.select_for_subs(self.config.view_max))
        return [Outgoing(joiner, SubscriptionAck(self.pid, sample))]

    def on_subscription_ack(self, ack: SubscriptionAck, now: float) -> List[Outgoing]:
        """Joiner side: seed the view from the contact's sample."""
        if self._join is not None and ack.contact == self._join.contact:
            self._join.on_ack()
        self.membership.add(ack.contact)
        for pid in ack.view_sample:
            self.membership.add(pid)
        return []

    def try_unsubscribe(self, now: float) -> bool:
        """Attempt to leave Π.

        Sec. 3.4: "the unsubscription of any process is refused as long as
        the local unsubscription buffer of the process exceeds a given size",
        which protects the unsubscription from being truncated away before
        it was ever gossiped.
        """
        return self.membership.local_unsubscribe(
            now, self.config.unsub_refusal_threshold
        )

    # ------------------------------------------------------------------
    # Retransmissions
    # ------------------------------------------------------------------
    def on_retransmit_request(
        self, request: RetransmitRequest, now: float
    ) -> List[Outgoing]:
        self.stats.retransmit_requests_received += 1
        found = RetransmissionEngine.serve(request.event_ids, self.events, self.archive)
        if not found:
            return []
        self.stats.retransmits_served += len(found)
        return [Outgoing(request.requester, RetransmitResponse(self.pid, tuple(found)))]

    def on_retransmit_response(
        self, response: RetransmitResponse, now: float
    ) -> List[Outgoing]:
        out: List[Outgoing] = []
        for notification in response.events:
            if notification.event_id in self.event_ids:
                self.stats.duplicates += 1
                continue
            self.stats.retransmits_delivered += 1
            if self._causal_mode:
                # A recovered dependency routes through the gate like any
                # receipt; it may itself expose deeper missing dependencies,
                # solicited from the responder who served it.
                self._causal_receive(notification, now, response.responder, out)
                continue
            self._deliver(notification, now)
            self._stage_for_forwarding(notification)
            self.retransmitter.on_received(notification.event_id)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def joined(self) -> bool:
        """True once integration evidence (any gossip) has been observed, or
        if the node never had to join (it was bootstrapped with a view)."""
        if self._join is None:
            return True
        return self._join.integrated

    def has_delivered(self, event_id: EventId) -> bool:
        """Whether ``event_id`` is still recorded as delivered.  Note this is
        bounded knowledge: ids evicted from ``eventIds`` are forgotten."""
        return event_id in self.event_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LpbcastNode(pid={self.pid}, |view|={len(self.view)}, "
            f"delivered={self.stats.delivered})"
        )
