"""Delivery disciplines layered over raw LPB-DELIVER.

lpbcast's native guarantee is unordered, probabilistic delivery.  Real
publish/subscribe deployments usually want *per-source FIFO*: notifications
from one publisher delivered in publication order.  The per-sender sequence
numbers that lpbcast's event ids already carry (Sec. 3.2) make this a thin
layer: a :class:`FifoDeliveryGate` holds out-of-order notifications back
until the gap fills, with a bounded holdback buffer per origin — when the
bound overflows (the gap notification was lost for good), the gate *skips*
the gap and releases, trading completeness for progress exactly like the
protocol's own bounded buffers do.

:class:`CausalDeliveryGate` strengthens this to *causal order* across
origins: every notification carries its publisher's delivered frontier as
vector-interval metadata (``Notification.deps``), and the gate releases a
notification only once the local frontier covers every named dependency and
the origin's own predecessor.  Unlike the FIFO gate it never skips ahead —
on overflow it evicts the oldest held notification *undelivered*, trading
completeness but never causal order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Tuple

from .events import Notification
from .ids import EventId, ProcessId

GatedListener = Callable[[ProcessId, Notification, float], None]


class _OriginState:
    __slots__ = ("next_seq", "held")

    def __init__(self) -> None:
        self.next_seq = 1
        self.held: Dict[int, Tuple[Notification, float]] = {}


class FifoDeliveryGate:
    """Per-origin FIFO ordering over a node's delivery stream.

    Register the gate as the node's delivery listener and attach application
    listeners to the gate::

        gate = FifoDeliveryGate(max_holdback=32)
        gate.add_listener(app_callback)
        node.add_delivery_listener(gate.on_delivery)

    ``max_holdback`` bounds the out-of-order notifications buffered per
    origin; on overflow the oldest gap is skipped (recorded in
    ``gaps_skipped``) so delivery keeps progressing.
    """

    def __init__(self, max_holdback: int = 64) -> None:
        if max_holdback < 1:
            raise ValueError("max_holdback must be positive")
        self.max_holdback = max_holdback
        self._origins: Dict[ProcessId, _OriginState] = {}
        self._listeners: List[GatedListener] = []
        self.delivered_in_order = 0
        self.held_back_total = 0
        self.gaps_skipped = 0
        self.stale_dropped = 0

    def add_listener(self, listener: GatedListener) -> None:
        self._listeners.append(listener)

    # -- the gate --------------------------------------------------------------
    def on_delivery(self, pid: ProcessId, notification: Notification,
                    now: float) -> None:
        origin = notification.event_id.origin
        seq = notification.event_id.seq
        state = self._origins.setdefault(origin, _OriginState())

        if seq < state.next_seq:
            # A re-delivery of something already released (bounded duplicate
            # detection upstream); FIFO consumers must not see it twice.
            self.stale_dropped += 1
            return
        if seq == state.next_seq:
            self._release(pid, notification, now, state)
            self._drain(pid, state)
            return

        # Out of order: hold back.
        state.held.setdefault(seq, (notification, now))
        self.held_back_total += 1
        while len(state.held) > self.max_holdback:
            # The gap is presumed lost: skip ahead to the earliest held
            # notification and release from there.
            earliest = min(state.held)
            self.gaps_skipped += earliest - state.next_seq
            state.next_seq = earliest
            self._drain(pid, state)

    def _drain(self, pid: ProcessId, state: _OriginState) -> None:
        while state.next_seq in state.held:
            notification, held_at = state.held.pop(state.next_seq)
            self._release(pid, notification, held_at, state)

    def _release(self, pid: ProcessId, notification: Notification,
                 now: float, state: _OriginState) -> None:
        state.next_seq = notification.event_id.seq + 1
        self.delivered_in_order += 1
        for listener in self._listeners:
            listener(pid, notification, now)

    # -- introspection ------------------------------------------------------------
    def held_count(self, origin: ProcessId) -> int:
        state = self._origins.get(origin)
        return len(state.held) if state is not None else 0

    def expected_next(self, origin: ProcessId) -> int:
        state = self._origins.get(origin)
        return state.next_seq if state is not None else 1


class CausalDeliveryGate:
    """Causal hold-back queue over a node's receive stream.

    The gate is pure data — no callbacks, no RNG — so it pickles into shard
    workers unchanged.  The node offers every received notification and
    performs delivery (and missing-dependency solicitation) itself::

        released, missing = gate.offer(notification)
        for n in released:   # causally ready, in release order
            ...deliver n...
        # ``missing`` are concrete EventIds to solicit via retransmission

    State is a per-origin *frontier*: the highest contiguously delivered
    sequence number of each origin.  Because causal delivery implies
    per-origin FIFO, the frontier is a complete description of the delivered
    set — one integer per origin, the vector-interval compaction of Nédelec
    et al. ("Breaking the Scalability Barrier of Causal Broadcast").

    A notification ``(origin, seq)`` with dependencies ``deps`` is *ready*
    when ``frontier[origin] == seq - 1`` (the origin's interval stays
    contiguous) and ``frontier[o] >= s`` for every dependency ``(o, s)``.
    Not-ready notifications are held, bounded by ``max_holdback``; overflow
    evicts the oldest held notification undelivered (counted in
    ``evicted``), so a correct gate can *never* release out of causal
    order — the ``causality`` invariant holds unconditionally.
    """

    def __init__(self, max_holdback: int = 64) -> None:
        if max_holdback < 1:
            raise ValueError("max_holdback must be positive")
        self.max_holdback = max_holdback
        #: Highest contiguously delivered seq per origin (absent == 0).
        self.frontier: Dict[ProcessId, int] = {}
        #: Held-back notifications in arrival order (oldest first).
        self.held: "OrderedDict[EventId, Notification]" = OrderedDict()
        self.delivered_causally = 0
        self.held_back_total = 0
        self.evicted = 0
        self.stale_dropped = 0

    # -- publication ------------------------------------------------------------
    def publish_deps(self) -> Tuple[EventId, ...]:
        """The local frontier as dependency metadata for a new publication.

        One :class:`EventId` per origin with a non-empty delivered interval,
        sorted by origin for determinism.  Call *before* offering the new
        notification itself, so the publisher's own previous event appears
        as an explicit dependency.
        """
        return tuple(
            EventId(origin, seq)
            for origin, seq in sorted(self.frontier.items())
            if seq > 0
        )

    # -- the gate ---------------------------------------------------------------
    def offer(
        self, notification: Notification
    ) -> Tuple[List[Notification], List[EventId]]:
        """Offer a received notification; return ``(released, missing)``.

        ``released`` lists notifications that became causally ready (the
        offered one and any previously held ones it unblocked), in release
        order.  ``missing`` lists concrete event ids the local frontier
        lacks on the offered notification's dependency paths — candidates
        for retransmission-driven recovery.
        """
        origin = notification.event_id.origin
        seq = notification.event_id.seq
        if seq <= self.frontier.get(origin, 0):
            self.stale_dropped += 1
            return [], []
        if notification.event_id in self.held:
            self.stale_dropped += 1
            return [], []

        if self._ready(notification):
            released = [notification]
            self.frontier[origin] = seq
            self.delivered_causally += 1
            self._drain(released)
            return released, []

        self.held[notification.event_id] = notification
        self.held_back_total += 1
        while len(self.held) > self.max_holdback:
            self.held.popitem(last=False)
            self.evicted += 1
        return [], self._missing_for(notification)

    def _ready(self, notification: Notification) -> bool:
        eid = notification.event_id
        if self.frontier.get(eid.origin, 0) != eid.seq - 1:
            return False
        for dep in notification.deps:
            if self.frontier.get(dep.origin, 0) < dep.seq:
                return False
        return True

    def _drain(self, released: List[Notification]) -> None:
        # Releasing one notification may unblock held ones; iterate to a
        # fixpoint.  Held size is bounded by max_holdback, so this stays
        # cheap.
        progressed = True
        while progressed:
            progressed = False
            for eid in list(self.held):
                notification = self.held[eid]
                if self._ready(notification):
                    del self.held[eid]
                    self.frontier[eid.origin] = eid.seq
                    self.delivered_causally += 1
                    released.append(notification)
                    progressed = True

    def _missing_for(self, notification: Notification) -> List[EventId]:
        """Concrete event ids below the offered notification's dependencies
        (and its origin predecessor) that the local frontier lacks."""
        missing: List[EventId] = []
        seen = set()
        gaps: List[Tuple[ProcessId, int]] = [
            (notification.event_id.origin, notification.event_id.seq - 1)
        ]
        gaps.extend((dep.origin, dep.seq) for dep in notification.deps)
        for origin, upto in gaps:
            have = self.frontier.get(origin, 0)
            for seq in range(have + 1, upto + 1):
                eid = EventId(origin, seq)
                if eid not in seen and eid not in self.held:
                    seen.add(eid)
                    missing.append(eid)
                if len(missing) >= self.max_holdback:
                    return missing
        return missing

    # -- introspection ------------------------------------------------------------
    def held_count(self) -> int:
        return len(self.held)

    def frontier_of(self, origin: ProcessId) -> int:
        return self.frontier.get(origin, 0)
