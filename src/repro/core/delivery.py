"""Delivery disciplines layered over raw LPB-DELIVER.

lpbcast's native guarantee is unordered, probabilistic delivery.  Real
publish/subscribe deployments usually want *per-source FIFO*: notifications
from one publisher delivered in publication order.  The per-sender sequence
numbers that lpbcast's event ids already carry (Sec. 3.2) make this a thin
layer: a :class:`FifoDeliveryGate` holds out-of-order notifications back
until the gap fills, with a bounded holdback buffer per origin — when the
bound overflows (the gap notification was lost for good), the gate *skips*
the gap and releases, trading completeness for progress exactly like the
protocol's own bounded buffers do.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .events import Notification
from .ids import ProcessId

GatedListener = Callable[[ProcessId, Notification, float], None]


class _OriginState:
    __slots__ = ("next_seq", "held")

    def __init__(self) -> None:
        self.next_seq = 1
        self.held: Dict[int, Tuple[Notification, float]] = {}


class FifoDeliveryGate:
    """Per-origin FIFO ordering over a node's delivery stream.

    Register the gate as the node's delivery listener and attach application
    listeners to the gate::

        gate = FifoDeliveryGate(max_holdback=32)
        gate.add_listener(app_callback)
        node.add_delivery_listener(gate.on_delivery)

    ``max_holdback`` bounds the out-of-order notifications buffered per
    origin; on overflow the oldest gap is skipped (recorded in
    ``gaps_skipped``) so delivery keeps progressing.
    """

    def __init__(self, max_holdback: int = 64) -> None:
        if max_holdback < 1:
            raise ValueError("max_holdback must be positive")
        self.max_holdback = max_holdback
        self._origins: Dict[ProcessId, _OriginState] = {}
        self._listeners: List[GatedListener] = []
        self.delivered_in_order = 0
        self.held_back_total = 0
        self.gaps_skipped = 0
        self.stale_dropped = 0

    def add_listener(self, listener: GatedListener) -> None:
        self._listeners.append(listener)

    # -- the gate --------------------------------------------------------------
    def on_delivery(self, pid: ProcessId, notification: Notification,
                    now: float) -> None:
        origin = notification.event_id.origin
        seq = notification.event_id.seq
        state = self._origins.setdefault(origin, _OriginState())

        if seq < state.next_seq:
            # A re-delivery of something already released (bounded duplicate
            # detection upstream); FIFO consumers must not see it twice.
            self.stale_dropped += 1
            return
        if seq == state.next_seq:
            self._release(pid, notification, now, state)
            self._drain(pid, state)
            return

        # Out of order: hold back.
        state.held.setdefault(seq, (notification, now))
        self.held_back_total += 1
        while len(state.held) > self.max_holdback:
            # The gap is presumed lost: skip ahead to the earliest held
            # notification and release from there.
            earliest = min(state.held)
            self.gaps_skipped += earliest - state.next_seq
            state.next_seq = earliest
            self._drain(pid, state)

    def _drain(self, pid: ProcessId, state: _OriginState) -> None:
        while state.next_seq in state.held:
            notification, held_at = state.held.pop(state.next_seq)
            self._release(pid, notification, held_at, state)

    def _release(self, pid: ProcessId, notification: Notification,
                 now: float, state: _OriginState) -> None:
        state.next_seq = notification.event_id.seq + 1
        self.delivered_in_order += 1
        for listener in self._listeners:
            listener(pid, notification, now)

    # -- introspection ------------------------------------------------------------
    def held_count(self, origin: ProcessId) -> int:
        state = self._origins.get(origin)
        return len(state.held) if state is not None else 0

    def expected_next(self, origin: ProcessId) -> int:
        state = self._origins.get(origin)
        return state.next_seq if state is not None else 1
