"""lpbcast configuration.

Collects every protocol parameter the paper names, with the defaults used in
its analysis and experiments (Sec. 4.1, Sec. 5): fanout ``F = 3``, view bound
``l``, the per-list maxima ``|L|m`` and the gossip period ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class LpbcastConfig:
    """Parameters of one lpbcast instance.

    Attributes mirror the paper's notation:

    * ``fanout`` — F, gossip targets per period (default 3, Sec. 4.3).
    * ``view_max`` — l = \\|view\\|m, the partial-view bound.
    * ``events_max`` — \\|events\\|m, pending-notification buffer bound.
    * ``event_ids_max`` — \\|eventIds\\|m, delivered-id digest bound (the
      "notification list size" swept in Fig. 6(b); 60 in Fig. 6(a)).
    * ``subs_max`` / ``unsubs_max`` — \\|subs\\|m / \\|unSubs\\|m.
    * ``gossip_period`` — T, in simulated time units (the round runner treats
      one round as one period).
    * ``unsub_ttl`` — obsolescence deadline for timestamped unsubscriptions
      (Sec. 3.4).
    * ``unsub_refusal_threshold`` — "the unsubscription of any process is
      refused as long as the local unsubscription buffer of the process
      exceeds a given size" (Sec. 3.4).
    * ``membership_period`` — k: piggyback membership lists only on every
      k-th gossip (Sec. 6.1 studies k > 1, which *hurts*), and
      ``membership_boost`` — send membership-only gossips this many extra
      times per period (Sec. 6.1: gossiping membership more often helps).
    * ``weighted_views`` — enable the Sec. 6.1 awareness-weight heuristic.
    * ``weighted_events`` — apply the same scheme to the ``events`` buffer
      (Sec. 6.1: "A similar scheme could also be applied to events and
      eventIds"): overflow drops the most-duplicated staged notification
      instead of a uniformly random one.
    * ``retransmissions`` — enable digest-driven gossip pull (off in the
      paper's measurements, Sec. 5.2).
    * ``push_back`` — the *gossip push* repair of Sec. 2.3 footnote 5
      ("gossip senders are updated by gossip receivers with messages missing
      in the digest gossiped by the former one", as in rpbcast): on
      receiving a gossip, send the sender any retransmittable notifications
      its digest lacks.  Combine with ``retransmissions`` for the
      anti-entropy (symmetric push/pull) variant.
    * ``digest_implies_delivery`` — the paper's measurement shortcut: an
      unknown id arriving in a gossip's ``eventIds`` digest counts as the
      notification having been received (Sec. 5.2: "once a gossip receiver
      has received the identifier of a notification, the notification itself
      is assumed to have been received").  This is what makes repetitions
      effectively unlimited (Sec. 4: digests keep spreading an event's
      identity every round while it stays buffered) and is required to match
      the analysis; mutually exclusive with ``retransmissions``.
    * ``archive_max`` — bound of the older-notification buffer kept "only ...
      to satisfy retransmission requests" (Sec. 3.2).
    * ``retransmit_request_max`` — cap on ids solicited per incoming digest.
    """

    fanout: int = 3
    view_max: int = 25
    events_max: int = 30
    event_ids_max: int = 60
    subs_max: int = 15
    unsubs_max: int = 15
    gossip_period: float = 1.0
    unsub_ttl: float = 20.0
    unsub_refusal_threshold: int = 10
    membership_period: int = 1
    membership_boost: int = 0
    weighted_views: bool = False
    weighted_events: bool = False
    retransmissions: bool = False
    push_back: bool = False
    digest_implies_delivery: bool = True
    archive_max: int = 120
    retransmit_request_max: int = 20
    compact_event_ids: bool = False
    join_timeout: float = 5.0
    #: Byzantine-tolerant delivery variant: hold payloads until a sampled
    #: Echo quorum and then a Ready quorum confirm a single digest per event
    #: id (Bracha-style double echo over the partial view, cf. "Scalable
    #: Byzantine Reliable Broadcast").  Requires actual payload transfer, so
    #: it is incompatible with ``digest_implies_delivery`` and with the
    #: repair schemes that assume immediate delivery.
    double_echo: bool = False
    #: Echo/Ready sample size (targets drawn from the partial view).
    echo_fanout: int = 3
    #: Distinct echo senders required before emitting Ready.
    echo_threshold: int = 2
    #: Distinct ready senders required before delivering.
    ready_threshold: int = 2
    #: Bound on payloads held pending quorum (oldest evicted first).
    echo_pending_max: int = 60
    #: Causal-delivery mode: events carry the publisher's per-origin
    #: delivered frontier as compact vector-interval metadata and a hold-back
    #: queue releases them only once every named dependency (and the
    #: origin's previous event) has been delivered locally.  Requires real
    #: payload transfer (``digest_implies_delivery=False`` — a digest-implied
    #: delivery carries no dependency metadata) and is incompatible with the
    #: quorum-gated ``double_echo`` variant, which orders delivery its own
    #: way.  Combine with ``retransmissions`` for dependency recovery: a
    #: missing dependency is solicited from the gossip sender like any
    #: digest gap.
    causal_delivery: bool = False
    #: Bound on notifications held back awaiting dependencies; on overflow
    #: the oldest held notification is evicted *undelivered* (completeness
    #: is traded, never causal order — the paper's bounded-buffer philosophy
    #: applied to the hold-back queue).
    causal_holdback_max: int = 64

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError("fanout (F) must be at least 1")
        if self.view_max < self.fanout:
            # "F <= l must always be ensured" (Sec. 4.3).
            raise ValueError(
                f"view_max (l={self.view_max}) must be >= fanout (F={self.fanout})"
            )
        for name in ("events_max", "event_ids_max", "subs_max", "unsubs_max",
                     "archive_max", "retransmit_request_max"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.gossip_period <= 0:
            raise ValueError("gossip_period (T) must be positive")
        if self.unsub_ttl <= 0:
            raise ValueError("unsub_ttl must be positive")
        if self.membership_period < 1:
            raise ValueError("membership_period (k) must be >= 1")
        if self.membership_boost < 0:
            raise ValueError("membership_boost must be non-negative")
        if self.unsub_refusal_threshold < 1:
            raise ValueError("unsub_refusal_threshold must be >= 1")
        if self.join_timeout <= 0:
            raise ValueError("join_timeout must be positive")
        if self.push_back and self.digest_implies_delivery:
            raise ValueError(
                "push_back repairs actual payload transfer; it requires "
                "digest_implies_delivery=False (the digest shortcut makes "
                "payload repair meaningless)"
            )
        if self.retransmissions and self.digest_implies_delivery:
            raise ValueError(
                "retransmissions and digest_implies_delivery are mutually "
                "exclusive: the latter is the paper's measurement shortcut "
                "('once a gossip receiver has received the identifier of a "
                "notification, the notification itself is assumed to have "
                "been received', Sec. 5.2), the former actually fetches the "
                "payload; enable at most one"
            )

        if self.echo_fanout < 1:
            raise ValueError("echo_fanout must be at least 1")
        if self.echo_threshold < 1 or self.ready_threshold < 1:
            raise ValueError("echo/ready thresholds must be at least 1")
        if self.echo_pending_max < 1:
            raise ValueError("echo_pending_max must be at least 1")
        if self.double_echo:
            if self.digest_implies_delivery:
                raise ValueError(
                    "double_echo holds payloads until quorum; the "
                    "digest_implies_delivery shortcut (deliver on id alone) "
                    "defeats it — set digest_implies_delivery=False"
                )
            if self.retransmissions or self.push_back:
                raise ValueError(
                    "double_echo is incompatible with retransmissions/"
                    "push_back: both repair schemes hand payloads straight "
                    "to delivery, bypassing the echo quorum"
                )
        if self.causal_holdback_max < 1:
            raise ValueError("causal_holdback_max must be at least 1")
        if self.causal_delivery:
            if self.digest_implies_delivery:
                raise ValueError(
                    "causal_delivery orders real payloads; the "
                    "digest_implies_delivery shortcut (deliver on id alone) "
                    "carries no dependency metadata — set "
                    "digest_implies_delivery=False"
                )
            if self.double_echo:
                raise ValueError(
                    "causal_delivery is incompatible with double_echo: the "
                    "hold-back queue and the echo quorum are mutually "
                    "exclusive delivery disciplines"
                )

    def with_overrides(self, **changes) -> "LpbcastConfig":
        """Return a copy with the given fields replaced (validated again)."""
        return replace(self, **changes)


#: Configuration used by the paper's dissemination experiments (Sec. 5.1).
PAPER_SIMULATION_CONFIG = LpbcastConfig(fanout=3, view_max=25)

#: Configuration of the Fig. 6(a) measurement runs: F=3, |eventIds|m = 60.
PAPER_MEASUREMENT_CONFIG = LpbcastConfig(
    fanout=3, view_max=15, event_ids_max=60, events_max=60
)
