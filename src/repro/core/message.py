"""Protocol messages.

A gossip message "serves four purposes" (Sec. 3.2): it carries notifications,
notification identifiers (a digest), unsubscriptions and subscriptions.  All
message types are immutable records built from tuples so that a message placed
on the simulated wire cannot be mutated by sender or receiver afterwards —
the same aliasing discipline a real serialization boundary would enforce.

Besides the gossip itself, this module defines the auxiliary messages of
Sec. 3.4 (the join handshake) and of the optional retransmission scheme that
the digests exist to support ("Older notifications are stored in a different
buffer, which is only required to satisfy retransmission requests", Sec. 3.2).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Tuple

from .events import Notification, Unsubscription
from .ids import EventId, ProcessId


def payload_digest(payload) -> int:
    """Canonical 64-bit payload digest used by the double-echo variant.

    Two correct nodes that received the same payload must compute the same
    digest, so the digest is taken over sorted-key compact JSON (the wire
    codec's payload encoding); payloads outside the JSON universe fall back
    to ``repr``, which is stable for the simulators' in-process objects.
    """
    try:
        canonical = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    except (TypeError, ValueError):
        canonical = repr(payload)
    raw = hashlib.sha256(canonical.encode("utf-8")).digest()
    return int.from_bytes(raw[:8], "big")


@dataclass(frozen=True)
class GossipMessage:
    """One periodic gossip (Figure 1(b)).

    ``event_ids`` is the digest of delivered notifications; under the plain
    Figure 1 algorithm it is informational (and feeds retransmissions when
    they are enabled).
    """

    sender: ProcessId
    subs: Tuple[ProcessId, ...] = ()
    unsubs: Tuple[Unsubscription, ...] = ()
    events: Tuple[Notification, ...] = ()
    event_ids: Tuple[EventId, ...] = ()
    #: Optional piggybacked heartbeat counters ((pid, counter), ...) for the
    #: gossip-style failure detector (repro.failuredetector, paper ref [29]).
    heartbeats: Tuple[Tuple[ProcessId, int], ...] = ()

    def size_estimate(self) -> int:
        """Rough wire-size proxy (one unit per carried element plus header).

        Benches use this to compare per-gossip overhead across protocols and
        parameterizations; it deliberately counts elements, not bytes, since
        the paper reasons about list lengths.
        """
        return (1 + len(self.subs) + len(self.unsubs) + len(self.events)
                + len(self.event_ids) + len(self.heartbeats))


@dataclass(frozen=True)
class SubscriptionRequest:
    """Join handshake (Sec. 3.4): ``subscriber`` asks an existing member to
    gossip its subscription on its behalf."""

    subscriber: ProcessId


@dataclass(frozen=True)
class SubscriptionAck:
    """Confirms that the contact accepted a :class:`SubscriptionRequest` and
    will forward the subscription.  The ack also seeds the joiner's view with
    a sample of the contact's view, which is how the joiner starts receiving
    gossips before its subscription has propagated."""

    contact: ProcessId
    view_sample: Tuple[ProcessId, ...] = ()


@dataclass(frozen=True)
class RetransmitRequest:
    """Gossip-pull solicitation: the receiver of a digest asks the digest's
    sender for notifications it has not delivered."""

    requester: ProcessId
    event_ids: Tuple[EventId, ...] = ()


@dataclass(frozen=True)
class RetransmitResponse:
    """Answer to a :class:`RetransmitRequest` with whatever notifications the
    responder still buffers (events buffer or retransmission archive)."""

    responder: ProcessId
    events: Tuple[Notification, ...] = ()


@dataclass(frozen=True)
class EchoMessage:
    """First phase of the double-echo delivery variant (Byzantine defense).

    ``sender`` vouches that it received a payload for ``event_id`` whose
    canonical digest is ``digest``.  Receivers count distinct echo senders
    per ``(event_id, digest)`` pair; an equivocating source splits its echo
    weight across digests and cannot reach quorum for two of them.
    """

    sender: ProcessId
    event_id: EventId
    digest: int


@dataclass(frozen=True)
class ReadyMessage:
    """Second phase of the double-echo variant: ``sender`` saw an echo (or
    ready) quorum for ``(event_id, digest)`` and commits to delivering that
    digest and no other.  Ready amplification lets late nodes reach the
    delivery quorum without having sampled enough echoes themselves."""

    sender: ProcessId
    event_id: EventId
    digest: int


@dataclass(frozen=True)
class Outgoing:
    """A (destination, message) pair produced by a protocol state machine.

    Nodes are transport-agnostic: handlers return ``Outgoing`` records and a
    runner (round-based or discrete-event) owns delivery, loss and latency.
    """

    destination: ProcessId
    message: object
