"""Process and event identifiers.

The paper (Sec. 3.1) assumes processes "have ordered distinct identifiers".
We model a process identifier as a plain ``int``: ordered, distinct, hashable
and cheap — large-scale simulations create millions of id comparisons per run.
A :class:`ProcessNamespace` helper hands out fresh ids and remembers an
optional human-readable name for each, which the runtime layers use for
reporting.

Event (notification) identifiers follow Sec. 3.2: "We suppose that these
identifiers are unique, and include the identifier of the originator."  An
:class:`EventId` is therefore an ``(origin, seq)`` pair where ``seq`` is a
per-originator sequence number.  The per-sender sequencing is what enables the
compact digest optimization implemented in
:class:`repro.core.buffers.CompactEventIdDigest`.
"""

from __future__ import annotations

from typing import Dict, Iterator, NamedTuple, Optional

ProcessId = int
"""Alias documenting intent: process identifiers are ordered distinct ints."""


class EventId(NamedTuple):
    """Globally unique notification identifier.

    ``origin`` is the publishing process and ``seq`` the 1-based sequence
    number of the notification at that publisher.  Ordering is lexicographic
    which matches "delivered in sequence" per sender (Sec. 3.2).
    """

    origin: ProcessId
    seq: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.origin}#{self.seq}"


class ProcessNamespace:
    """Factory for fresh, ordered process identifiers.

    >>> ns = ProcessNamespace()
    >>> a = ns.create("alice")
    >>> b = ns.create()
    >>> a < b
    True
    >>> ns.name_of(a)
    'alice'
    """

    def __init__(self, start: ProcessId = 0) -> None:
        if start < 0:
            raise ValueError("process ids must be non-negative")
        self._next = start
        self._names: Dict[ProcessId, str] = {}

    def create(self, name: Optional[str] = None) -> ProcessId:
        """Return a fresh process id, optionally associating a display name."""
        pid = self._next
        self._next += 1
        self._names[pid] = name if name is not None else f"p{pid}"
        return pid

    def create_many(self, count: int) -> list:
        """Create ``count`` fresh ids in one call (convenience for runners)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.create() for _ in range(count)]

    def name_of(self, pid: ProcessId) -> str:
        """Display name for ``pid`` (falls back to ``p<id>`` for foreign ids)."""
        return self._names.get(pid, f"p{pid}")

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(self._names)

    def __contains__(self, pid: object) -> bool:
        return pid in self._names
