"""Bounded buffers with the truncation policies of Sec. 3.2 / Figure 1.

Every list used by lpbcast "has a maximum size, noted |L|m" and "none of the
outlined data structures contains duplicates" — adding an already contained
element leaves the structure unchanged.  Three eviction policies appear in the
paper's pseudocode:

* ``remove random element``   — used for ``unSubs``, ``subs`` and ``events``
  (:class:`RandomDropBuffer`);
* ``remove oldest element``   — used for ``eventIds``
  (:class:`FifoEventIdBuffer`, generically :class:`FifoBuffer`);
* the per-sender digest optimization sketched in Sec. 3.2: "the buffer can be
  optimized by only retaining for each sender the identifiers of notifications
  delivered since the last one delivered in sequence"
  (:class:`CompactEventIdDigest`).

All random choices are drawn from an injected ``random.Random`` so that whole
simulations are reproducible from a single seed.

Hot-path note: eviction loops here dominate large-n simulation profiles, so
:meth:`RandomDropBuffer.truncate` inlines the eviction draw when the stream is
a plain ``random.Random``.  The inlined draw replicates
``Random.randrange(n)`` bit-for-bit (``getrandbits(n.bit_length())``
rejection sampling — CPython's ``_randbelow``), so optimized and
straightforward runs consume identical random streams; the telemetry parity
suite pins this with a pre-optimization golden counter record.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from .ids import EventId, ProcessId

T = TypeVar("T", bound=Hashable)


def _identity(item):
    """Default buffer key (module-level, not a lambda, so buffers — and the
    nodes holding them — can be pickled across shard-worker boundaries)."""
    return item


class RandomDropBuffer(Generic[T]):
    """A bounded duplicate-free collection with uniform random eviction.

    Implements the ``while |L| > |L|m: remove random element from L`` loops of
    Figure 1(a).  Membership tests, insertion and random removal are all
    O(1) (swap-remove against a position index), which matters because every
    gossip reception truncates several of these buffers.

    The buffer intentionally does *not* auto-truncate on :meth:`add`; the
    paper's pseudocode adds a batch of elements and then truncates, and some
    call sites need the evicted elements (Phase 2 recycles view evictees into
    ``subs``).  Call :meth:`truncate` explicitly, or use :meth:`add_truncating`
    for the common single-step case.
    """

    def __init__(
        self,
        max_size: int,
        rng: Optional[random.Random] = None,
        key: Optional[Callable[[T], Hashable]] = None,
    ) -> None:
        if max_size < 0:
            raise ValueError("max_size must be non-negative")
        self.max_size = max_size
        self._rng = rng if rng is not None else random.Random()
        self._key: Callable[[T], Hashable] = key if key is not None else _identity
        #: Items are their own keys in the common case; skipping the key
        #: call per membership test/insert matters in the reception path.
        self._key_is_identity = key is None
        self._items: List[T] = []
        self._index: Dict[Hashable, int] = {}

    # -- mutation ----------------------------------------------------------
    def add(self, item: T) -> bool:
        """Insert ``item``; return False (and leave the buffer unchanged) if
        an item with the same key is already present.  Identity is the
        item's ``key`` (default: the item itself) — the events buffer keys
        notifications by event id so arbitrary payloads need not be
        hashable."""
        k = item if self._key_is_identity else self._key(item)
        index = self._index
        if k in index:
            return False
        items = self._items
        index[k] = len(items)
        items.append(item)
        return True

    def add_all(self, items) -> int:
        """Insert every item; return how many were new."""
        added = 0
        for item in items:
            if self.add(item):
                added += 1
        return added

    def discard(self, item: T) -> bool:
        """Remove ``item`` (matched by key) if present; return whether it
        was present."""
        pos = self._index.pop(self._key(item), None)
        if pos is None:
            return False
        last = self._items.pop()
        if pos < len(self._items):
            self._items[pos] = last
            self._index[self._key(last)] = pos
        return True

    def pop_random(self) -> T:
        """Remove and return a uniformly random element."""
        if not self._items:
            raise IndexError("pop from empty buffer")
        pos = self._rng.randrange(len(self._items))
        item = self._items[pos]
        last = self._items.pop()
        del self._index[self._key(item)]
        if pos < len(self._items):
            self._items[pos] = last
            self._index[self._key(last)] = pos
        return item

    def truncate(self) -> List[T]:
        """Evict uniformly random elements until the bound holds.

        Returns the evicted elements (callers such as Phase 2 of Figure 1(a)
        recycle them).  For a plain ``random.Random`` stream the eviction
        loop is inlined (identical draws to :meth:`pop_random`, see module
        docstring); custom generators fall back to ``pop_random``.
        """
        items = self._items
        max_size = self.max_size
        n = len(items)
        if n <= max_size:
            return []
        rng = self._rng
        if type(rng) is not random.Random:
            evicted = []
            while len(items) > max_size:
                evicted.append(self.pop_random())
            return evicted
        evicted = []
        index = self._index
        keyfn = None if self._key_is_identity else self._key
        getrandbits = rng.getrandbits
        while n > max_size:
            # Random.randrange(n) == _randbelow(n): rejection-sample
            # n.bit_length() bits — same stream consumption, fewer frames.
            k = n.bit_length()
            pos = getrandbits(k)
            while pos >= n:
                pos = getrandbits(k)
            item = items[pos]
            last = items.pop()
            del index[item if keyfn is None else keyfn(item)]
            n -= 1
            if pos < n:
                items[pos] = last
                index[last if keyfn is None else keyfn(last)] = pos
            evicted.append(item)
        return evicted

    def add_truncating(self, item: T) -> List[T]:
        """``add`` followed by ``truncate``; returns the evicted elements."""
        self.add(item)
        return self.truncate()

    def clear(self) -> None:
        self._items.clear()
        self._index.clear()

    def drain(self) -> List[T]:
        """Return all elements and empty the buffer (``events`` is emptied
        after each outgoing gossip, Figure 1(b))."""
        items = list(self._items)
        self.clear()
        return items

    # -- queries -----------------------------------------------------------
    def sample(self, k: int) -> List[T]:
        """Uniform sample without replacement of ``min(k, len)`` elements."""
        if k >= len(self._items):
            return list(self._items)
        return self._rng.sample(self._items, k)

    def snapshot(self) -> Tuple[T, ...]:
        """Immutable copy of the current contents (order unspecified)."""
        return tuple(self._items)

    def __contains__(self, item: object) -> bool:
        try:
            return self._key(item) in self._index  # type: ignore[arg-type]
        except (TypeError, AttributeError):
            return False

    def contains_key(self, key: Hashable) -> bool:
        """Membership test by key (e.g. an event id for the events buffer)."""
        return key in self._index

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({list(self._items)!r}, max={self.max_size})"


class FifoBuffer(Generic[T]):
    """A bounded duplicate-free collection evicting the *oldest* element.

    Used for ``eventIds`` ("remove oldest element from eventIds",
    Figure 1(a)) and for the retransmission archive.  Re-adding an existing
    element does not refresh its age — Figure 1(a) only inserts fresh ids, and
    keeping insertion age makes "oldest" well defined.

    :meth:`snapshot` is cached: every gossip emission wires the ``eventIds``
    digest (Figure 1(b)), but between deliveries the buffer is unchanged, so
    the tuple is rebuilt only after a mutation.  Mutators invalidate the
    cache; no-op adds (item already present, nothing evicted) keep it.
    """

    def __init__(self, max_size: int) -> None:
        if max_size < 0:
            raise ValueError("max_size must be non-negative")
        self.max_size = max_size
        self._items: "OrderedDict[T, None]" = OrderedDict()
        self._snapshot: Optional[Tuple[T, ...]] = None

    def add(self, item: T) -> List[T]:
        """Insert ``item`` (no-op if present) and evict oldest elements as
        needed to respect the bound.  Returns the evicted elements."""
        items = self._items
        if item not in items:
            items[item] = None
            self._snapshot = None
        if len(items) <= self.max_size:
            return []
        evicted: List[T] = []
        while len(items) > self.max_size:
            oldest, _ = items.popitem(last=False)
            evicted.append(oldest)
        self._snapshot = None
        return evicted

    def add_all(self, items) -> List[T]:
        evicted: List[T] = []
        for item in items:
            evicted.extend(self.add(item))
        return evicted

    def discard(self, item: T) -> bool:
        if item in self._items:
            del self._items[item]
            self._snapshot = None
            return True
        return False

    def clear(self) -> None:
        self._items.clear()
        self._snapshot = None

    def snapshot(self) -> Tuple[T, ...]:
        """Contents oldest-first (cached between mutations)."""
        snap = self._snapshot
        if snap is None:
            snap = self._snapshot = tuple(self._items)
        return snap

    def oldest(self) -> T:
        if not self._items:
            raise IndexError("buffer is empty")
        return next(iter(self._items))

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({list(self._items)!r}, max={self.max_size})"


class FifoEventIdBuffer(FifoBuffer[EventId]):
    """``eventIds`` exactly as in the Figure 1(a) pseudocode.

    A plain bounded FIFO of event identifiers.  This is the variant whose
    bound ``|eventIds|m`` the measurements of Fig. 6(b) sweep: once an id is
    evicted, a late copy of the same notification is no longer recognized as
    a duplicate and is re-delivered/re-forwarded, and reliability accounting
    treats re-deliveries as duplicates.
    """


class FrequencyAwareEventBuffer:
    """``events`` buffer with awareness-weighted eviction (Sec. 6.1).

    "A similar scheme could also be applied to events and eventIds": when a
    duplicate of a staged notification arrives, that notification is
    evidently already circulating widely, so under overflow it is the best
    candidate to drop — the scarce forwarding slots go to notifications seen
    fewer times.  Ties are broken uniformly at random, degenerating to the
    pseudocode's random drop when all weights are equal.
    """

    def __init__(self, max_size: int, rng: Optional[random.Random] = None) -> None:
        if max_size < 0:
            raise ValueError("max_size must be non-negative")
        self.max_size = max_size
        self._rng = rng if rng is not None else random.Random()
        self._items: Dict[Hashable, object] = {}
        self._seen: Dict[Hashable, int] = {}

    @staticmethod
    def _key(item) -> Hashable:
        return item.event_id

    def add(self, item) -> bool:
        key = self._key(item)
        if key in self._items:
            return False
        self._items[key] = item
        self._seen[key] = 0
        return True

    def note_seen(self, event_id: Hashable) -> None:
        """A duplicate copy of ``event_id`` arrived."""
        if event_id in self._seen:
            self._seen[event_id] += 1

    def seen_count(self, event_id: Hashable) -> int:
        return self._seen.get(event_id, 0)

    def truncate(self) -> List:
        """Evict the most-seen notifications until the bound holds."""
        dropped: List = []
        while len(self._items) > self.max_size:
            max_seen = max(self._seen.values())
            candidates = [k for k, c in self._seen.items() if c == max_seen]
            victim = self._rng.choice(candidates)
            dropped.append(self._items.pop(victim))
            del self._seen[victim]
        return dropped

    def drain(self) -> List:
        items = list(self._items.values())
        self.clear()
        return items

    def clear(self) -> None:
        self._items.clear()
        self._seen.clear()

    def contains_key(self, key: Hashable) -> bool:
        return key in self._items

    def __contains__(self, item: object) -> bool:
        try:
            return self._key(item) in self._items  # type: ignore[arg-type]
        except AttributeError:
            return False

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items.values())


class _SenderDigest:
    """Delivered-id record for one originator.

    ``last_in_seq`` is the largest s such that every sequence number 1..s has
    been delivered; ``out_of_order`` holds delivered sequence numbers beyond
    the gap.  Whenever the gap closes, the record compacts itself.
    """

    __slots__ = ("last_in_seq", "out_of_order")

    def __init__(self) -> None:
        self.last_in_seq = 0
        self.out_of_order: Set[int] = set()

    def contains(self, seq: int) -> bool:
        return seq <= self.last_in_seq or seq in self.out_of_order

    def add(self, seq: int) -> None:
        if self.contains(seq):
            return
        if seq == self.last_in_seq + 1:
            self.last_in_seq = seq
            while self.last_in_seq + 1 in self.out_of_order:
                self.last_in_seq += 1
                self.out_of_order.remove(self.last_in_seq)
        else:
            self.out_of_order.add(seq)

    def pending_count(self) -> int:
        return len(self.out_of_order)


class CompactEventIdDigest:
    """The per-sender digest optimization of Sec. 3.2.

    "the buffer can be optimized by only retaining for each sender the
    identifiers of notifications delivered since the last one delivered in
    sequence."

    Memory is bounded by ``max_out_of_order`` *out-of-order* entries in total
    across all senders; in-sequence prefixes cost O(1) per sender regardless
    of how many notifications they summarize.  When the out-of-order budget
    overflows, the oldest-inserted out-of-order entries are folded away by
    advancing that sender's ``last_in_seq`` — a deliberate over-approximation
    (ids below ``last_in_seq`` read as delivered) that preserves the
    at-most-once delivery guarantee while keeping memory constant, at the
    price of possibly suppressing genuinely missing notifications, the same
    qualitative trade-off as evicting from ``eventIds``.
    """

    def __init__(self, max_out_of_order: int = 256) -> None:
        if max_out_of_order < 0:
            raise ValueError("max_out_of_order must be non-negative")
        self.max_out_of_order = max_out_of_order
        self._senders: Dict[ProcessId, _SenderDigest] = {}
        self._insertion_order: "OrderedDict[EventId, None]" = OrderedDict()

    def __contains__(self, event_id: object) -> bool:
        if not isinstance(event_id, tuple) or len(event_id) != 2:
            return False
        digest = self._senders.get(event_id[0])
        return digest is not None and digest.contains(event_id[1])

    def add(self, event_id: EventId) -> None:
        """Record ``event_id`` as delivered."""
        digest = self._senders.get(event_id.origin)
        if digest is None:
            digest = self._senders[event_id.origin] = _SenderDigest()
        if digest.contains(event_id.seq):
            return
        digest.add(event_id.seq)
        if event_id.seq > digest.last_in_seq:
            self._insertion_order[event_id] = None
        else:
            # The gap closed; drop tracking entries the compaction absorbed.
            self._compact_tracking(event_id.origin, digest)
        self._enforce_budget()

    def _compact_tracking(self, origin: ProcessId, digest: _SenderDigest) -> None:
        absorbed = [
            eid
            for eid in self._insertion_order
            if eid.origin == origin and eid.seq <= digest.last_in_seq
        ]
        for eid in absorbed:
            del self._insertion_order[eid]

    def _enforce_budget(self) -> None:
        while len(self._insertion_order) > self.max_out_of_order:
            oldest, _ = self._insertion_order.popitem(last=False)
            digest = self._senders[oldest.origin]
            # Fold: advance the in-sequence pointer past the evicted entry.
            if oldest.seq > digest.last_in_seq:
                for seq in range(digest.last_in_seq + 1, oldest.seq + 1):
                    digest.out_of_order.discard(seq)
                digest.last_in_seq = max(digest.last_in_seq, oldest.seq)
                while digest.last_in_seq + 1 in digest.out_of_order:
                    digest.last_in_seq += 1
                    digest.out_of_order.remove(digest.last_in_seq)
                self._compact_tracking(oldest.origin, digest)

    def out_of_order_count(self) -> int:
        """Total out-of-order entries currently tracked (memory proxy)."""
        return sum(d.pending_count() for d in self._senders.values())

    def last_in_sequence(self, origin: ProcessId) -> int:
        digest = self._senders.get(origin)
        return digest.last_in_seq if digest is not None else 0

    def senders(self) -> Tuple[ProcessId, ...]:
        return tuple(self._senders)
