"""Subscription lifecycle helpers (Sec. 3.4).

Two concerns live here:

* :class:`UnsubscriptionBuffer` — the ``unSubs`` list.  The paper's pseudocode
  treats it as a bounded random-eviction set; Sec. 3.4 additionally attaches a
  timestamp to every unsubscription so it can become obsolete, and refuses a
  local unsubscription while the buffer is saturated.  We keep one (latest)
  timestamp per process id, which preserves the pseudocode's set semantics
  while honouring the timestamp rule.

* :class:`JoinState` — the joiner-side handshake: "a process pi which wants to
  subscribe must know a process pj which is already in Π ... Otherwise, a
  timeout will trigger the re-emission of the subscription request."
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from .events import Unsubscription
from .ids import ProcessId


class UnsubscriptionBuffer:
    """Bounded buffer of timestamped unsubscriptions, keyed by process id.

    Re-adding an unsubscription for a process already buffered keeps the
    *newest* timestamp, so a refreshed unsubscription does not expire early.
    Overflow evicts uniformly at random (Figure 1(a), Phase 1).
    """

    def __init__(self, max_size: int, rng: Optional[random.Random] = None) -> None:
        if max_size < 0:
            raise ValueError("max_size must be non-negative")
        self.max_size = max_size
        self._rng = rng if rng is not None else random.Random()
        self._timestamps: Dict[ProcessId, float] = {}

    def add(self, unsub: Unsubscription) -> None:
        existing = self._timestamps.get(unsub.pid)
        if existing is None or unsub.timestamp > existing:
            self._timestamps[unsub.pid] = unsub.timestamp

    def truncate(self) -> List[Unsubscription]:
        """Random eviction down to the bound; returns evictees."""
        evicted: List[Unsubscription] = []
        while len(self._timestamps) > self.max_size:
            pid = self._rng.choice(list(self._timestamps))
            evicted.append(Unsubscription(pid, self._timestamps.pop(pid)))
        return evicted

    def purge_obsolete(self, now: float, ttl: float) -> List[Unsubscription]:
        """Drop entries whose timestamp is at least ``ttl`` old."""
        expired = [
            Unsubscription(pid, ts)
            for pid, ts in self._timestamps.items()
            if now - ts >= ttl
        ]
        for unsub in expired:
            del self._timestamps[unsub.pid]
        return expired

    def discard(self, pid: ProcessId) -> bool:
        if pid in self._timestamps:
            del self._timestamps[pid]
            return True
        return False

    def snapshot(self) -> Tuple[Unsubscription, ...]:
        return tuple(
            Unsubscription(pid, ts) for pid, ts in self._timestamps.items()
        )

    def __contains__(self, pid: object) -> bool:
        return pid in self._timestamps

    def __len__(self) -> int:
        return len(self._timestamps)

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(self._timestamps)


class JoinState:
    """Joiner-side subscription handshake with timeout-driven re-emission.

    The node drives this object: :meth:`start` when the application asks to
    join, :meth:`on_ack` / :meth:`on_gossip_received` as evidence of
    integration arrives, and :meth:`should_retry` from the periodic tick.
    """

    def __init__(self, contact: ProcessId, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError("join timeout must be positive")
        self.contact = contact
        self.timeout = timeout
        self.attempts = 0
        self.acknowledged = False
        self.integrated = False
        self._deadline: Optional[float] = None

    def start(self, now: float) -> None:
        """Record the emission of a subscription request."""
        self.attempts += 1
        self._deadline = now + self.timeout

    def on_ack(self) -> None:
        self.acknowledged = True

    def on_gossip_received(self) -> None:
        """Receiving gossip is the paper's integration signal: pi "will
        experience this by receiving more and more gossip messages"."""
        self.integrated = True

    def should_retry(self, now: float) -> bool:
        """True when the timeout elapsed without evidence of integration."""
        if self.integrated:
            return False
        return self._deadline is not None and now >= self._deadline
