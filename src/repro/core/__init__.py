"""lpbcast core: the paper's primary contribution (Sec. 3).

Public surface:

* :class:`~repro.core.node.LpbcastNode` — the protocol state machine.
* :class:`~repro.core.config.LpbcastConfig` — every tunable the paper names.
* Data structures: :class:`~repro.core.view.PartialView`,
  :class:`~repro.core.view.WeightedPartialView`, the bounded buffers, and the
  message records.
"""

from .buffers import (
    CompactEventIdDigest,
    FifoBuffer,
    FifoEventIdBuffer,
    FrequencyAwareEventBuffer,
    RandomDropBuffer,
)
from .config import (
    LpbcastConfig,
    PAPER_MEASUREMENT_CONFIG,
    PAPER_SIMULATION_CONFIG,
)
from .delivery import FifoDeliveryGate
from .events import Notification, Unsubscription, make_notification
from .ids import EventId, ProcessId, ProcessNamespace
from .message import (
    EchoMessage,
    GossipMessage,
    Outgoing,
    ReadyMessage,
    RetransmitRequest,
    RetransmitResponse,
    SubscriptionAck,
    SubscriptionRequest,
    payload_digest,
)
from .node import DeliveryListener, LpbcastNode, NodeStats
from .retransmit import NotificationArchive, RetransmissionEngine
from .subscription import JoinState, UnsubscriptionBuffer
from .view import PartialView, WeightedPartialView

__all__ = [
    "CompactEventIdDigest",
    "DeliveryListener",
    "EchoMessage",
    "EventId",
    "FifoBuffer",
    "FifoDeliveryGate",
    "FifoEventIdBuffer",
    "FrequencyAwareEventBuffer",
    "GossipMessage",
    "JoinState",
    "LpbcastConfig",
    "LpbcastNode",
    "make_notification",
    "NodeStats",
    "Notification",
    "NotificationArchive",
    "Outgoing",
    "PAPER_MEASUREMENT_CONFIG",
    "PAPER_SIMULATION_CONFIG",
    "PartialView",
    "payload_digest",
    "ProcessId",
    "ProcessNamespace",
    "RandomDropBuffer",
    "ReadyMessage",
    "RetransmissionEngine",
    "RetransmitRequest",
    "RetransmitResponse",
    "SubscriptionAck",
    "SubscriptionRequest",
    "Unsubscription",
    "UnsubscriptionBuffer",
    "WeightedPartialView",
]
