"""Topic names.

The paper presents lpbcast "with respect to a single topic ... Π can be
considered as a single topic or group, and joining/leaving Π can be viewed as
subscribing/unsubscribing from the topic" (Sec. 3.1).  The pub/sub facade
scales this out by running one independent lpbcast instance per topic — the
static topic-based scheme of [8] (Distributed Asynchronous Collections).
"""

from __future__ import annotations

import re

_TOPIC_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._\-/]*$")
_TOPIC_MAX_LENGTH = 255


def validate_topic(name: str) -> str:
    """Validate and return a topic name.

    Topics are non-empty strings of letters, digits and ``. _ - /`` starting
    with an alphanumeric — a conventional hierarchical-subject syntax (e.g.
    ``stocks/nasdaq``).
    """
    if not isinstance(name, str):
        raise TypeError("topic name must be a string")
    if not name or len(name) > _TOPIC_MAX_LENGTH:
        raise ValueError("topic name must be 1..255 characters")
    if not _TOPIC_PATTERN.match(name):
        raise ValueError(
            f"invalid topic name {name!r}: use letters, digits, '.', '_', "
            "'-', '/' and start alphanumerically"
        )
    return name
