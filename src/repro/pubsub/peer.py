"""A pub/sub peer: one process, many topics, one lpbcast instance per topic.

"In peer-to-peer computing, every process acts as client and server"
(Sec. 1): a :class:`PubSubPeer` both publishes and consumes.  Per topic it
embeds an independent :class:`~repro.core.node.LpbcastNode`; on the wire,
gossips are wrapped in a :class:`TopicEnvelope` so one transport carries all
topics.  The peer itself satisfies the same runner interface as a bare node
(``pid``, ``on_tick``, ``handle_message``), so pub/sub systems run unchanged
under both simulators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from ..core.config import LpbcastConfig
from ..core.events import Notification
from ..core.ids import ProcessId
from ..core.message import Outgoing
from ..core.node import LpbcastNode
from ..sim.rng import SeedSequence
from .topic import validate_topic

TopicListener = Callable[[str, Notification, float], None]
"""Callback ``listener(topic, notification, now)`` for topic deliveries."""


@dataclass(frozen=True)
class TopicEnvelope:
    """Wire wrapper multiplexing per-topic protocol messages."""

    topic: str
    inner: object


class PubSubPeer:
    """Topic-based publish/subscribe endpoint backed by lpbcast."""

    def __init__(
        self,
        pid: ProcessId,
        config: Optional[LpbcastConfig] = None,
        seed: int = 0,
    ) -> None:
        self.pid = pid
        self.config = config if config is not None else LpbcastConfig()
        self._seeds = SeedSequence(seed).spawn("peer", pid)
        self._nodes: Dict[str, LpbcastNode] = {}
        self._listeners: Dict[str, List[TopicListener]] = {}
        self.unknown_topic_messages = 0

    # -- subscription management ----------------------------------------------
    def subscribe(
        self,
        topic: str,
        listener: Optional[TopicListener] = None,
        initial_view: Iterable[ProcessId] = (),
        contact: Optional[ProcessId] = None,
        now: float = 0.0,
    ) -> List[Outgoing]:
        """Join ``topic``.

        Bootstrap either with ``initial_view`` (the peer already knows some
        subscribers, e.g. from a directory) or through ``contact`` (the
        Sec. 3.4 handshake; the returned messages must be handed to the
        runner).  Subscribing to an already-subscribed topic only adds the
        listener.
        """
        topic = validate_topic(topic)
        if listener is not None:
            self._listeners.setdefault(topic, []).append(listener)
        existing = self._nodes.get(topic)
        if existing is not None:
            if not existing.unsubscribed:
                return []
            # Re-subscribing after a leave: the old instance has announced
            # its departure and cannot publish again (Sec. 3.4); replace it
            # with a fresh subscription.
            del self._nodes[topic]
        node = LpbcastNode(
            self.pid,
            self.config,
            self._seeds.rng("topic", topic),
            initial_view=initial_view,
        )
        node.add_delivery_listener(self._make_dispatcher(topic))
        self._nodes[topic] = node
        if contact is not None:
            return self._wrap(topic, node.start_join(contact, now))
        return []

    def unsubscribe(self, topic: str, now: float = 0.0) -> bool:
        """Leave ``topic`` (Sec. 3.4 semantics; may be refused while the
        topic node's unsubscription buffer is saturated)."""
        node = self._nodes.get(validate_topic(topic))
        if node is None:
            return True
        return node.try_unsubscribe(now)

    def topics(self) -> List[str]:
        return list(self._nodes)

    def topic_node(self, topic: str) -> LpbcastNode:
        """The embedded lpbcast instance (for metrics and tests)."""
        return self._nodes[validate_topic(topic)]

    # -- publishing ---------------------------------------------------------------
    def publish(self, topic: str, payload=None, now: float = 0.0) -> Notification:
        """Publish on a subscribed topic ("every process in Π can subscribe
        to and/or publish events", Sec. 3.1)."""
        node = self._nodes.get(validate_topic(topic))
        if node is None:
            raise KeyError(f"not subscribed to topic {topic!r}")
        return node.lpb_cast(payload, now)

    # -- runner interface -----------------------------------------------------------
    def on_tick(self, now: float) -> List[Outgoing]:
        out: List[Outgoing] = []
        for topic, node in self._nodes.items():
            if node.unsubscribed and not len(node.unsubs):
                continue  # fully drained after leaving
            out.extend(self._wrap(topic, node.on_tick(now)))
        return out

    def handle_message(self, sender: ProcessId, message, now: float) -> List[Outgoing]:
        if not isinstance(message, TopicEnvelope):
            raise TypeError("PubSubPeer only accepts TopicEnvelope messages")
        node = self._nodes.get(message.topic)
        if node is None:
            # Not (or no longer) subscribed: tolerate stragglers, a peer's
            # id lingers in remote views until unsubscriptions propagate.
            self.unknown_topic_messages += 1
            return []
        return self._wrap(message.topic, node.handle_message(sender, message.inner, now))

    # -- internals ---------------------------------------------------------------------
    def _wrap(self, topic: str, outgoings: List[Outgoing]) -> List[Outgoing]:
        return [
            Outgoing(out.destination, TopicEnvelope(topic, out.message))
            for out in outgoings
        ]

    def _make_dispatcher(self, topic: str):
        def dispatch(pid: ProcessId, notification: Notification, now: float) -> None:
            for listener in self._listeners.get(topic, ()):
                listener(topic, notification, now)

        return dispatch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PubSubPeer(pid={self.pid}, topics={sorted(self._nodes)})"


def build_pubsub_peers(
    count: int,
    topics: Dict[str, List[ProcessId]],
    config: Optional[LpbcastConfig] = None,
    seed: int = 0,
) -> List[PubSubPeer]:
    """Create ``count`` peers and pre-subscribe them per the ``topics`` map
    (topic -> subscriber pids), bootstrapping each topic's views uniformly
    among its subscribers."""
    cfg = config if config is not None else LpbcastConfig()
    seeds = SeedSequence(seed)
    peers = [PubSubPeer(pid, cfg, seed=seeds.seed("peer", pid)) for pid in range(count)]
    view_rng = seeds.rng("views")
    for topic, subscribers in topics.items():
        for pid in subscribers:
            others = [p for p in subscribers if p != pid]
            k = min(cfg.view_max, len(others))
            initial = view_rng.sample(others, k) if others else []
            peers[pid].subscribe(topic, initial_view=initial)
    return peers
