"""Topic-based publish/subscribe over lpbcast (paper Sec. 3.1)."""

from .peer import PubSubPeer, TopicEnvelope, TopicListener, build_pubsub_peers
from .topic import validate_topic

__all__ = [
    "build_pubsub_peers",
    "PubSubPeer",
    "TopicEnvelope",
    "TopicListener",
    "validate_topic",
]
