"""pbcast protocol messages.

Three message kinds realize Bimodal Multicast's two phases:

* :class:`PbcastData` — a notification copy (first-phase multicast or a
  second-phase retransmission), carrying its hop count;
* :class:`PbcastDigest` — the periodic gossip: a digest of recently received
  message ids, optionally piggybacking membership information when the
  instance runs over the partial-view membership layer (Sec. 6.2);
* :class:`PbcastSolicit` — a retransmission solicitation for ids named in a
  digest but not delivered locally (gossip pull).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.events import Notification, Unsubscription
from ..core.ids import EventId, ProcessId


@dataclass(frozen=True)
class PbcastData:
    """A message copy: unreliable first phase (hops=0) or a retransmission."""

    sender: ProcessId
    notification: Notification
    hops: int = 0


@dataclass(frozen=True)
class PbcastDigest:
    """Periodic digest gossip, with optional membership piggyback."""

    sender: ProcessId
    ids: Tuple[EventId, ...] = ()
    subs: Tuple[ProcessId, ...] = ()
    unsubs: Tuple[Unsubscription, ...] = ()

    def size_estimate(self) -> int:
        return 1 + len(self.ids) + len(self.subs) + len(self.unsubs)


@dataclass(frozen=True)
class PbcastSolicit:
    """Request for retransmission of the named message ids."""

    requester: ProcessId
    ids: Tuple[EventId, ...] = ()
