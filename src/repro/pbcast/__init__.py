"""pbcast — the Bimodal Multicast baseline (paper Secs. 2.3 and 6.2)."""

from .builders import (
    MEMBERSHIP_PARTIAL,
    MEMBERSHIP_TOTAL,
    build_pbcast_nodes,
)
from .config import FIRST_PHASE_MULTICAST, FIRST_PHASE_NONE, PbcastConfig
from .messages import PbcastData, PbcastDigest, PbcastSolicit
from .node import PbcastNode, PbcastStats

__all__ = [
    "build_pbcast_nodes",
    "FIRST_PHASE_MULTICAST",
    "FIRST_PHASE_NONE",
    "MEMBERSHIP_PARTIAL",
    "MEMBERSHIP_TOTAL",
    "PbcastConfig",
    "PbcastData",
    "PbcastDigest",
    "PbcastNode",
    "PbcastSolicit",
    "PbcastStats",
]
