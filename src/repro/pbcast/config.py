"""pbcast (Bimodal Multicast) configuration.

The paper contrasts lpbcast with pbcast along three axes (Sec. 6.2): pbcast
"(1) ... limits the number of hops as well as (2) repetitions for a given
message, and (3) ... melts the two phases of pbcast (dissemination of events,
resp. exchange of digests) into a single phase" — i.e. pbcast has a separate
unreliable first phase plus a digest/anti-entropy second phase.

Defaults follow the paper's Fig. 7 settings where given (F = 5: "because
repetitions and hops are limited in the case of pbcast, a higher fanout is
required to obtain similar results than with lpbcast").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

FIRST_PHASE_MULTICAST = "multicast"
FIRST_PHASE_NONE = "none"


@dataclass(frozen=True)
class PbcastConfig:
    """Parameters of one pbcast instance.

    * ``fanout`` — digest-gossip targets per round (paper's Fig. 7 uses 5).
    * ``repetition_limit`` — rounds a received message stays *gossipable*
      (appears in outgoing digests); pbcast's bounded repetitions.
    * ``hop_limit`` — a stored copy is served to solicitors only while its
      hop count is below this bound; pbcast's bounded hops.
    * ``first_phase`` — ``"multicast"`` emulates the unreliable IP-multicast
      first phase (one lossy best-effort send to every member);
      ``"none"`` starts from the publisher only, isolating the gossip repair
      phase (used by the Fig. 7(a) comparison, which plots epidemic growth).
    * ``message_buffer_max`` — bounded store of message payloads available
      for retransmission (oldest dropped).
    * ``event_ids_max`` — bounded delivered-id memory, as in lpbcast, so the
      Fig. 7(b) reliability sweep is comparable with Fig. 6(a).
    * ``solicit_max`` — cap on ids solicited from one digest.
    * ``gossip_period`` — T, for the discrete-event runtime.
    * ``view_max`` / ``subs_max`` / ``unsubs_max`` / ``unsub_ttl`` — used
      when the instance runs over the partial-view membership layer.
    """

    fanout: int = 5
    repetition_limit: int = 3
    hop_limit: int = 4
    first_phase: str = FIRST_PHASE_MULTICAST
    message_buffer_max: int = 120
    event_ids_max: int = 60
    solicit_max: int = 30
    gossip_period: float = 1.0
    view_max: int = 15
    subs_max: int = 15
    unsubs_max: int = 15
    unsub_ttl: float = 20.0

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError("fanout must be at least 1")
        if self.repetition_limit < 1:
            raise ValueError("repetition_limit must be >= 1")
        if self.hop_limit < 1:
            raise ValueError("hop_limit must be >= 1")
        if self.first_phase not in (FIRST_PHASE_MULTICAST, FIRST_PHASE_NONE):
            raise ValueError(
                f"first_phase must be '{FIRST_PHASE_MULTICAST}' or "
                f"'{FIRST_PHASE_NONE}'"
            )
        for name in ("message_buffer_max", "event_ids_max", "solicit_max"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.gossip_period <= 0:
            raise ValueError("gossip_period must be positive")
        if self.view_max < self.fanout:
            raise ValueError("view_max must be >= fanout")

    def with_overrides(self, **changes) -> "PbcastConfig":
        return replace(self, **changes)
