"""The pbcast (Bimodal Multicast) baseline with pluggable membership.

Bimodal Multicast (Birman et al., TOCS 1999; paper Sec. 2.3) works in two
phases:

1. an **unreliable first phase** — "a 'classical' best-effort multicast
   protocol (e.g., IP multicast) is used for a first rough dissemination of
   messages";
2. a **gossip repair phase** — "every process in the system periodically
   gossips a digest of its received messages, and gossip receivers can
   solicit such messages from the sender if they have not received them
   previously" (gossip pull).

Unlike lpbcast, pbcast bounds both the number of *repetitions* (a message is
only gossiped about for a limited number of rounds after receipt) and the
number of *hops* (a copy that has been retransmitted too many times is no
longer served).  Those two bounds are why, at equal fanout, lpbcast spreads
at least as fast (Fig. 7(a)) — its digests re-advertise an event for as long
as the id stays buffered.

Membership is pluggable (paper Sec. 6.2): a
:class:`~repro.membership.layer.TotalMembership` gives the original pbcast;
a :class:`~repro.membership.layer.PartialViewMembership` gives "pbcast with
partial view", with membership information piggybacked on the digest gossips
exactly as the membership layer prescribes.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.buffers import FifoEventIdBuffer
from ..core.events import Notification
from ..core.ids import EventId, ProcessId
from ..core.message import Outgoing
from ..membership.layer import PartialViewMembership, TotalMembership
from .config import FIRST_PHASE_MULTICAST, PbcastConfig
from .messages import PbcastData, PbcastDigest, PbcastSolicit

DeliveryListener = Callable[[ProcessId, Notification, float], None]

MulticastOracle = Callable[[], Iterable[ProcessId]]
"""Returns the destinations of the first-phase multicast.

IP multicast reaches every group member regardless of any process's local
membership view, so the runner supplies the ground-truth member list; when no
oracle is set, the node falls back to the processes it knows about.
"""


@dataclass
class PbcastStats:
    published: int = 0
    delivered: int = 0
    duplicates: int = 0
    digests_sent: int = 0
    digests_received: int = 0
    solicits_sent: int = 0
    solicits_received: int = 0
    retransmissions_served: int = 0
    hop_limit_refusals: int = 0
    first_phase_sends: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class _StoredMessage:
    """A buffered message copy with its gossip bookkeeping."""

    __slots__ = ("notification", "hops", "received_tick")

    def __init__(self, notification: Notification, hops: int, received_tick: int) -> None:
        self.notification = notification
        self.hops = hops
        self.received_tick = received_tick


class PbcastNode:
    """One pbcast process with a pluggable membership provider."""

    def __init__(
        self,
        pid: ProcessId,
        config: Optional[PbcastConfig] = None,
        rng: Optional[random.Random] = None,
        membership=None,
        initial_view: Iterable[ProcessId] = (),
    ) -> None:
        self.pid = pid
        self.config = config if config is not None else PbcastConfig()
        self.rng = rng if rng is not None else random.Random()
        cfg = self.config

        if membership is not None:
            self.membership = membership
        else:
            self.membership = PartialViewMembership(
                owner=pid,
                view_max=cfg.view_max,
                subs_max=cfg.subs_max,
                unsubs_max=cfg.unsubs_max,
                unsub_ttl=cfg.unsub_ttl,
                rng=self.rng,
                initial_view=initial_view,
            )

        self.event_ids = FifoEventIdBuffer(cfg.event_ids_max)
        self._store: "OrderedDict[EventId, _StoredMessage]" = OrderedDict()
        self._multicast_oracle: Optional[MulticastOracle] = None
        self.stats = PbcastStats()
        self._listeners: List[DeliveryListener] = []
        self._next_seq = 0
        self._tick_count = 0

    # -- construction helpers -------------------------------------------------
    @classmethod
    def with_total_view(
        cls,
        pid: ProcessId,
        members: Iterable[ProcessId],
        config: Optional[PbcastConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> "PbcastNode":
        """The original pbcast: complete membership knowledge."""
        rng = rng if rng is not None else random.Random()
        membership = TotalMembership(pid, members, rng)
        return cls(pid, config, rng, membership=membership)

    def set_multicast_oracle(self, oracle: MulticastOracle) -> None:
        self._multicast_oracle = oracle

    def add_delivery_listener(self, listener: DeliveryListener) -> None:
        self._listeners.append(listener)

    @property
    def view(self):
        """The membership's current knowledge (partial view or total set);
        exposed under the same name as lpbcast for the metrics layer."""
        return self.membership.known_processes()

    # -- application interface --------------------------------------------------
    def multicast(self, payload=None, now: float = 0.0) -> Notification:
        """Publish a message: deliver locally, run the first phase (if
        configured), and start gossiping about it."""
        self._next_seq += 1
        notification = Notification(EventId(self.pid, self._next_seq), payload, now)
        self.stats.published += 1
        self._accept(notification, hops=0, now=now)
        return notification

    def first_phase_targets(self) -> List[ProcessId]:
        if self._multicast_oracle is not None:
            return [pid for pid in self._multicast_oracle() if pid != self.pid]
        return [pid for pid in self.membership.known_processes() if pid != self.pid]

    def emit_first_phase(self, notification: Notification) -> List[Outgoing]:
        """The unreliable best-effort multicast (phase 1).  Returned messages
        are subject to the runner's loss model — exactly the "first rough
        dissemination"."""
        if self.config.first_phase != FIRST_PHASE_MULTICAST:
            return []
        out = [
            Outgoing(target, PbcastData(self.pid, notification, hops=0))
            for target in self.first_phase_targets()
        ]
        self.stats.first_phase_sends += len(out)
        return out

    def publish(self, payload=None, now: float = 0.0) -> Tuple[Notification, List[Outgoing]]:
        """Convenience: :meth:`multicast` plus the phase-1 sends."""
        notification = self.multicast(payload, now)
        return notification, self.emit_first_phase(notification)

    # -- message handling ---------------------------------------------------------
    def handle_message(self, sender: ProcessId, message, now: float) -> List[Outgoing]:
        if isinstance(message, PbcastDigest):
            return self.on_digest(message, now)
        if isinstance(message, PbcastData):
            return self.on_data(message, now)
        if isinstance(message, PbcastSolicit):
            return self.on_solicit(message, now)
        raise TypeError(f"unknown message type: {type(message).__name__}")

    def on_digest(self, digest: PbcastDigest, now: float) -> List[Outgoing]:
        """Second phase, receiver side: merge membership, solicit missing."""
        if digest.sender == self.pid:
            return []  # defensive: never solicit oneself
        self.stats.digests_received += 1
        self.membership.apply_membership(digest.subs, digest.unsubs, now)
        missing = [
            event_id
            for event_id in digest.ids
            if event_id not in self.event_ids
        ][: self.config.solicit_max]
        if not missing:
            return []
        self.stats.solicits_sent += 1
        return [Outgoing(digest.sender, PbcastSolicit(self.pid, tuple(missing)))]

    def on_solicit(self, solicit: PbcastSolicit, now: float) -> List[Outgoing]:
        """Serve retransmissions, respecting the hop limit."""
        self.stats.solicits_received += 1
        if solicit.requester == self.pid:
            return []  # a self-addressed (stray or forged) solicit: never
            # answer — a node must not send messages to itself
        out: List[Outgoing] = []
        for event_id in solicit.ids:
            stored = self._store.get(event_id)
            if stored is None:
                continue
            if stored.hops >= self.config.hop_limit:
                self.stats.hop_limit_refusals += 1
                continue
            self.stats.retransmissions_served += 1
            out.append(
                Outgoing(
                    solicit.requester,
                    PbcastData(self.pid, stored.notification, stored.hops + 1),
                )
            )
        return out

    def on_data(self, data: PbcastData, now: float) -> List[Outgoing]:
        """A message copy arrived (phase 1 or retransmission)."""
        if data.notification.event_id in self.event_ids:
            self.stats.duplicates += 1
            return []
        self._accept(data.notification, data.hops, now)
        return []

    def _accept(self, notification: Notification, hops: int, now: float) -> None:
        self.stats.delivered += 1
        for listener in self._listeners:
            listener(self.pid, notification, now)
        self.event_ids.add(notification.event_id)
        self._store[notification.event_id] = _StoredMessage(
            notification, hops, self._tick_count
        )
        while len(self._store) > self.config.message_buffer_max:
            self._store.popitem(last=False)

    # -- periodic gossip -------------------------------------------------------------
    def on_tick(self, now: float) -> List[Outgoing]:
        """Gossip a digest of recently received messages to F targets."""
        self._tick_count += 1
        self.membership.purge(now)
        gossipable = self._gossipable_ids()
        subs, unsubs = self.membership.membership_payload(now)
        digest = PbcastDigest(self.pid, gossipable, subs=subs, unsubs=unsubs)
        targets = self.membership.gossip_targets(self.config.fanout)
        if targets:
            self.stats.digests_sent += 1
        return [Outgoing(target, digest) for target in targets]

    def _gossipable_ids(self) -> Tuple[EventId, ...]:
        """Ids still within the repetition window.

        "(1) the latter algorithm limits the number of hops as well as
        (2) repetitions for a given message" — a message received at tick t
        appears in digests only until tick t + repetition_limit.
        """
        horizon = self._tick_count - self.config.repetition_limit
        return tuple(
            event_id
            for event_id, stored in self._store.items()
            if stored.received_tick >= horizon
        )

    # -- introspection ------------------------------------------------------------------
    def has_delivered(self, event_id: EventId) -> bool:
        return event_id in self.event_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PbcastNode(pid={self.pid}, membership={type(self.membership).__name__}, "
            f"delivered={self.stats.delivered})"
        )
