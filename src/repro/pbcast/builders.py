"""Construction helpers for pbcast experiment populations."""

from __future__ import annotations

from typing import List, Optional

from ..membership.layer import TotalMembership
from ..sim.rng import SeedSequence
from ..sim.topology import uniform_random_views
from .config import PbcastConfig
from .node import PbcastNode

MEMBERSHIP_TOTAL = "total"
MEMBERSHIP_PARTIAL = "partial"


def build_pbcast_nodes(
    count: int,
    config: Optional[PbcastConfig] = None,
    seed: int = 0,
    membership: str = MEMBERSHIP_PARTIAL,
    first_pid: int = 0,
) -> List[PbcastNode]:
    """Create ``count`` pbcast nodes.

    ``membership="total"`` builds the original pbcast (every process knows
    every other); ``membership="partial"`` builds "pbcast with partial view"
    (Sec. 6.2 / Fig. 7): each process starts from a uniform random view of
    size ``config.view_max`` maintained by the lpbcast membership layer.
    """
    if count < 1:
        raise ValueError("need at least one process")
    if membership not in (MEMBERSHIP_TOTAL, MEMBERSHIP_PARTIAL):
        raise ValueError("membership must be 'total' or 'partial'")
    cfg = config if config is not None else PbcastConfig()
    seeds = SeedSequence(seed)
    pids = list(range(first_pid, first_pid + count))

    nodes: List[PbcastNode] = []
    if membership == MEMBERSHIP_TOTAL:
        for pid in pids:
            rng = seeds.rng("node", pid)
            nodes.append(
                PbcastNode(
                    pid, cfg, rng,
                    membership=TotalMembership(pid, pids, rng),
                )
            )
    else:
        views = uniform_random_views(pids, cfg.view_max, seeds.rng("views"))
        for pid in pids:
            nodes.append(
                PbcastNode(pid, cfg, seeds.rng("node", pid),
                           initial_view=views[pid])
            )

    member_list = tuple(pids)
    for node in nodes:
        node.set_multicast_oracle(lambda members=member_list: members)
    return nodes
