"""repro — a reproduction of *Lightweight Probabilistic Broadcast* (lpbcast).

Eugster, Guerraoui, Handurukande, Kermarrec, Kouznetsov — DSN 2001.

Subpackages
-----------
``repro.core``
    The lpbcast protocol: partial views, bounded buffers, gossip node.
``repro.membership``
    The separable partial-view membership layer (Sec. 6.2), weighted views
    (Sec. 6.1) and prioritary-process bootstrap (Sec. 4.4).
``repro.pbcast``
    The Bimodal Multicast baseline (Birman et al.) with pluggable membership.
``repro.sim``
    Synchronous-round and discrete-event simulators, network/failure models,
    workloads and churn.
``repro.analysis``
    The paper's stochastic analysis: infection Markov chain (Eqs. 1–3),
    expected-infection recursion (Appendix A), partition probability
    (Eqs. 4–5).
``repro.metrics``
    Infection curves, delivery reliability (1-β), view-graph statistics.
``repro.pubsub``
    Topic-based publish/subscribe facade (Sec. 3.1).
"""

from .core import (
    EventId,
    GossipMessage,
    LpbcastConfig,
    LpbcastNode,
    Notification,
    PartialView,
    ProcessId,
    WeightedPartialView,
)

__version__ = "1.0.0"

__all__ = [
    "EventId",
    "GossipMessage",
    "LpbcastConfig",
    "LpbcastNode",
    "Notification",
    "PartialView",
    "ProcessId",
    "WeightedPartialView",
    "__version__",
]
